package serve

// The cluster admin channel (ORMA/1). Topology changes — add a shard,
// remove a shard, replicate the routing table to a standby — ride a
// separate listener from ingest, so admin traffic can never be confused
// with a session and a firewalled deployment can expose the two planes
// differently. The protocol deliberately reuses ORMP/1's message framing
// (type byte + uvarint length + body): one framing implementation, two
// preambles.
//
// A connection starts with the 5-byte preamble "ORMA" + version (1).
// Commands and replies:
//
//	AdminStatus      → AdminTable (the router's full ORMRTAB v2 bytes)
//	AdminAddShard    (uvarint epoch + string addr) → AdminOK (uvarint new
//	                 epoch) or AdminErr
//	AdminRemoveShard (uvarint epoch + string addr) → AdminOK or AdminErr
//	AdminPull        (uvarint have-epoch) → AdminTable
//	AdminPush        (ORMRTAB v2 bytes) → AdminOK (uvarint epoch) or
//	                 AdminErr
//
// Every mutating command carries the epoch the sender believes current.
// The receiver applies it only when that epoch matches (add/remove) or is
// not older (push); otherwise it answers AdminErr carrying a
// *StaleEpochError. Compare-and-swap on the epoch is what makes the admin
// plane idempotent under retries and safe under concurrent operators: a
// duplicate or raced command sees the epoch it helped create and is
// refused instead of applied twice.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"ormprof/internal/checkpoint"
)

// AdminMagic is the admin-connection preamble: protocol name + version.
const AdminMagic = "ORMA\x01"

// Admin message types. They share MsgType's framing but live on their own
// listener; the two byte spaces never meet on one connection.
const (
	AdminStatus      MsgType = 0x01
	AdminAddShard    MsgType = 0x02
	AdminRemoveShard MsgType = 0x03
	AdminPull        MsgType = 0x04
	AdminPush        MsgType = 0x05

	AdminOK    MsgType = 0x10
	AdminTable MsgType = 0x11
	AdminErr   MsgType = 0x1F
)

// adminErrStaleEpoch is the AdminErr code for an epoch CAS failure; code
// 0 is a generic failure.
const adminErrStaleEpoch = 1

// StaleEpochError reports an admin command or replicated table built
// against a topology the receiver has already moved past (or, for
// add/remove, one it has not reached). The command was not applied.
type StaleEpochError struct {
	Have uint64 // the receiver's current ring epoch
	Got  uint64 // the epoch the sender presented
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("serve: stale ring epoch %d (current epoch is %d)", e.Got, e.Have)
}

// encodeAdminErr builds an AdminErr body: code, have-epoch, got-epoch,
// then the message text.
func encodeAdminErr(err error) []byte {
	var code, have, got uint64
	if se, ok := err.(*StaleEpochError); ok {
		code, have, got = adminErrStaleEpoch, se.Have, se.Got
	}
	b := uvarintBody(code)
	b = append(b, uvarintBody(have)...)
	b = append(b, uvarintBody(got)...)
	return appendString(b, err.Error())
}

// decodeAdminErr reverses encodeAdminErr, resurrecting the typed
// *StaleEpochError when the code says so.
func decodeAdminErr(body []byte) error {
	sc := &byteScanner{data: body}
	code, err := sc.uvarint()
	if err != nil {
		return protof("AdminErr body lacks a code")
	}
	have, err := sc.uvarint()
	if err != nil {
		return protof("AdminErr body lacks a have-epoch")
	}
	got, err := sc.uvarint()
	if err != nil {
		return protof("AdminErr body lacks a got-epoch")
	}
	msg, err := sc.str(4096)
	if err != nil {
		return err
	}
	if code == adminErrStaleEpoch {
		return &StaleEpochError{Have: have, Got: got}
	}
	return fmt.Errorf("serve: admin: %s", msg)
}

// encodeShardCmd builds an AdminAddShard/AdminRemoveShard body.
func encodeShardCmd(epoch uint64, addr string) []byte {
	return appendString(uvarintBody(epoch), addr)
}

func decodeShardCmd(body []byte) (epoch uint64, addr string, err error) {
	sc := &byteScanner{data: body}
	if epoch, err = sc.uvarint(); err != nil {
		return 0, "", protof("shard command lacks an epoch")
	}
	if addr, err = sc.str(MaxAddrHintLen); err != nil {
		return 0, "", err
	}
	if addr == "" {
		return 0, "", protof("shard command with empty address")
	}
	if sc.off != len(body) {
		return 0, "", protof("%d trailing bytes after shard command", len(body)-sc.off)
	}
	return epoch, addr, nil
}

// ServeAdmin accepts admin connections on ln until it closes. Run it in
// its own goroutine next to Serve; the listener is registered with the
// router, so Shutdown and Kill close it along with the ingest listener.
func (r *Router) ServeAdmin(ln net.Listener) error {
	r.mu.Lock()
	if r.draining || r.killed {
		r.mu.Unlock()
		ln.Close()
		return nil
	}
	r.adminLn = ln
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			closing := r.draining || r.killed
			r.mu.Unlock()
			if closing {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		r.mu.Lock()
		if r.draining || r.killed {
			r.mu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.dropConn(conn)
			r.handleAdmin(conn)
		}()
	}
}

// handleAdmin runs one admin connection: preamble, then a command loop
// until the peer hangs up. Each command gets exactly one reply.
func (r *Router) handleAdmin(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	conn.SetReadDeadline(time.Now().Add(r.cfg.HelloTimeout))
	magic := make([]byte, len(AdminMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != AdminMagic {
		return
	}
	reply := func(t MsgType, body []byte) bool {
		conn.SetWriteDeadline(time.Now().Add(r.cfg.HelloTimeout))
		if err := writeMsg(bw, t, body); err != nil {
			return false
		}
		return bw.Flush() == nil
	}
	for {
		conn.SetReadDeadline(time.Now().Add(r.cfg.HelloTimeout))
		mt, body, err := readMsg(br)
		if err != nil {
			return
		}
		switch mt {
		case AdminStatus, AdminPull:
			// Pull carries the peer's epoch; the reply is the full table
			// either way — the puller applies it only if newer, so there
			// is nothing to gate here.
			out, err := checkpoint.EncodeRouterTable(r.State())
			if err != nil {
				reply(AdminErr, encodeAdminErr(err))
				return
			}
			if !reply(AdminTable, out) {
				return
			}
		case AdminAddShard, AdminRemoveShard:
			epoch, addr, derr := decodeShardCmd(body)
			if derr != nil {
				reply(AdminErr, encodeAdminErr(derr))
				return
			}
			var newEpoch uint64
			if mt == AdminAddShard {
				newEpoch, err = r.AddShard(epoch, addr)
			} else {
				newEpoch, err = r.RemoveShard(epoch, addr)
			}
			if err != nil {
				if !reply(AdminErr, encodeAdminErr(err)) {
					return
				}
				continue
			}
			if !reply(AdminOK, uvarintBody(newEpoch)) {
				return
			}
		case AdminPush:
			st, derr := checkpoint.DecodeRouterTable("admin-push", body)
			if derr != nil {
				reply(AdminErr, encodeAdminErr(derr))
				return
			}
			if aerr := r.ApplyTable(st); aerr != nil {
				if !reply(AdminErr, encodeAdminErr(aerr)) {
					return
				}
				continue
			}
			if !reply(AdminOK, uvarintBody(st.Epoch)) {
				return
			}
		default:
			reply(AdminErr, encodeAdminErr(protof("unexpected admin message %#02x", byte(mt))))
			return
		}
	}
}

// --- Admin client helpers (ormpd -ctl, and router-to-router replication) ---

// adminConn is one admin client connection.
type adminConn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	tmo  time.Duration
}

func dialAdmin(addr string, timeout time.Duration) (*adminConn, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: admin dial %s: %w", addr, err)
	}
	c := &adminConn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn), tmo: timeout}
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := c.bw.WriteString(AdminMagic); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *adminConn) close() { c.conn.Close() }

// roundTrip sends one command and returns the body of the expected
// reply; an AdminErr reply becomes its typed error.
func (c *adminConn) roundTrip(t MsgType, body []byte, want MsgType) ([]byte, error) {
	c.conn.SetWriteDeadline(time.Now().Add(c.tmo))
	if err := writeMsg(c.bw, t, body); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	c.conn.SetReadDeadline(time.Now().Add(c.tmo))
	mt, reply, err := readMsg(c.br)
	if err != nil {
		return nil, err
	}
	if mt == AdminErr {
		return nil, decodeAdminErr(reply)
	}
	if mt != want {
		return nil, protof("unexpected admin reply %#02x", byte(mt))
	}
	return reply, nil
}

// AdminFetchTable asks the router at addr for its current table.
func AdminFetchTable(addr string, timeout time.Duration) (*checkpoint.RouterState, error) {
	c, err := dialAdmin(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer c.close()
	body, err := c.roundTrip(AdminStatus, nil, AdminTable)
	if err != nil {
		return nil, err
	}
	return checkpoint.DecodeRouterTable("admin:"+addr, body)
}

// AdminShardCmd sends add-shard or remove-shard (add selects which) to
// the router at addr, presenting epoch for the CAS. It returns the new
// epoch on success; a *StaleEpochError means the command was refused.
func AdminShardCmd(addr string, add bool, epoch uint64, shard string, timeout time.Duration) (uint64, error) {
	c, err := dialAdmin(addr, timeout)
	if err != nil {
		return 0, err
	}
	defer c.close()
	t := AdminRemoveShard
	if add {
		t = AdminAddShard
	}
	body, err := c.roundTrip(t, encodeShardCmd(epoch, shard), AdminOK)
	if err != nil {
		return 0, err
	}
	return parseUvarintBody(AdminOK, body)
}

// AdminPushTable pushes a full table to the router at addr. The receiver
// applies it unless it is older than what it holds (*StaleEpochError).
func AdminPushTable(addr string, st *checkpoint.RouterState, timeout time.Duration) error {
	out, err := checkpoint.EncodeRouterTable(st)
	if err != nil {
		return err
	}
	c, err := dialAdmin(addr, timeout)
	if err != nil {
		return err
	}
	defer c.close()
	_, err = c.roundTrip(AdminPush, out, AdminOK)
	return err
}

// AdminPullTable fetches the table from the router at addr, announcing
// the puller's own epoch (informational; the reply is unconditional).
func AdminPullTable(addr string, have uint64, timeout time.Duration) (*checkpoint.RouterState, error) {
	c, err := dialAdmin(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer c.close()
	body, err := c.roundTrip(AdminPull, uvarintBody(have), AdminTable)
	if err != nil {
		return nil, err
	}
	return checkpoint.DecodeRouterTable("admin:"+addr, body)
}
