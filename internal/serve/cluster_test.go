package serve

// Unit tests for the cluster tier: the consistent-hash ring, the shard
// failover state machine, the routing path (verbatim relay, reroute on a
// dead shard, retry-hint propagation, durable reroute table), and the
// merge plane's shard-count invariance. The root-level cluster soak
// (cluster_soak_test.go) covers kill/restart under live streams; these
// tests pin the pieces in isolation.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"ormprof/internal/checkpoint"
	"ormprof/internal/testutil"
)

// ringSeq renders a session's failover order as addresses, which is
// comparable across rings built from differently-ordered shard lists.
func ringSeq(r *ring, session string) []string {
	var out []string
	for _, i := range r.order(session) {
		out = append(out, r.addrs[i])
	}
	return out
}

func TestRingDeterministicAssignment(t *testing.T) {
	addrs := []string{"h1:7417", "h2:7417", "h3:7417", "h4:7417"}
	r1, err := newRing(addrs)
	if err != nil {
		t.Fatal(err)
	}
	// Same shard set, different list order: assignment must not change,
	// because every router replica derives the ring from its own flag
	// order and they must all agree.
	r2, err := newRing([]string{"h3:7417", "h1:7417", "h4:7417", "h2:7417"})
	if err != nil {
		t.Fatal(err)
	}
	primaries := make(map[string]int)
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("session-%d", i)
		seq := ringSeq(r1, s)
		if len(seq) != len(addrs) {
			t.Fatalf("order(%q) covers %d shards, want %d", s, len(seq), len(addrs))
		}
		seen := make(map[string]bool)
		for _, a := range seq {
			if seen[a] {
				t.Fatalf("order(%q) repeats shard %s", s, a)
			}
			seen[a] = true
		}
		if got, want := ringSeq(r2, s), seq; !reflect.DeepEqual(got, want) {
			t.Fatalf("order(%q) depends on shard list order: %v vs %v", s, got, want)
		}
		primaries[seq[0]]++
	}
	for _, a := range addrs {
		if primaries[a] == 0 {
			t.Errorf("shard %s is primary for no session out of 1000", a)
		}
	}
}

func TestRingRejectsBadShardLists(t *testing.T) {
	for name, addrs := range map[string][]string{
		"empty-list": {},
		"empty-addr": {"h1:7417", ""},
		"duplicate":  {"h1:7417", "h2:7417", "h1:7417"},
	} {
		if _, err := newRing(addrs); err == nil {
			t.Errorf("%s: newRing(%v) succeeded, want error", name, addrs)
		}
	}
}

func TestHealthStateMachine(t *testing.T) {
	testutil.LeakCheck(t)
	var healed atomic.Bool
	h := newHealth([]string{"a", "b"}, healthConfig{
		probeBase: 2 * time.Millisecond, probeMax: 10 * time.Millisecond,
	})
	h.probe = func(addr string) error {
		if healed.Load() {
			return nil
		}
		return errors.New("still dead")
	}
	h.start()
	defer h.stop()

	if !h.up("a") || !h.up("b") {
		t.Fatal("fresh shards must start Up")
	}
	h.markFailure("a", errors.New("dial refused"))
	if h.up("a") {
		t.Error("typed failure did not take shard a down")
	}
	if h.up("b") == false {
		t.Error("failure on a took b down too")
	}
	if got := h.downShards(); len(got) != 1 || got[0] != "a" {
		t.Errorf("downShards = %v, want [a]", got)
	}

	// Retry hints are per-shard and independent of up/down.
	h.noteRetryHint("a", 42*time.Millisecond)
	if got := h.retryHint("a"); got != 42*time.Millisecond {
		t.Errorf("retryHint(a) = %v, want 42ms", got)
	}
	if got := h.retryHint("b"); got != 0 {
		t.Errorf("retryHint(b) = %v, want 0 (never hinted)", got)
	}

	// While probes keep failing the shard stays down; once they succeed
	// the probe loop brings it back Up on its own.
	time.Sleep(20 * time.Millisecond)
	if h.up("a") {
		t.Error("shard recovered while probes still fail")
	}
	healed.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for !h.up("a") {
		if time.Now().After(deadline) {
			t.Fatal("shard a never probed back Up")
		}
		time.Sleep(time.Millisecond)
	}
	if got := h.downShards(); len(got) != 0 {
		t.Errorf("downShards after recovery = %v, want none", got)
	}
}

// routerHarness is a Router serving on an ephemeral port.
type routerHarness struct {
	r    *Router
	addr string
	done chan error
}

func startRouter(t *testing.T, cfg RouterConfig) *routerHarness {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(ln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &routerHarness{r: r, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { h.done <- r.Serve() }()
	return h
}

func (h *routerHarness) shutdown(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.r.Shutdown(ctx); err != nil {
		t.Errorf("router shutdown: %v", err)
	}
	if err := <-h.done; err != nil {
		t.Errorf("router serve: %v", err)
	}
}

// deadAddr reserves a loopback address and immediately frees it, so
// dialing it fails fast with a refusal — a shard that is down.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// sessionWithPrimary searches for a session ID whose ring primary is the
// given address, so failover tests pick their victim deterministically.
func sessionWithPrimary(t *testing.T, shards []string, primary string) string {
	t.Helper()
	rg, err := newRing(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		s := fmt.Sprintf("victim-%d", i)
		if rg.primary(s) == primary {
			return s
		}
	}
	t.Fatalf("no session found with primary %s", primary)
	return ""
}

// TestRouterReroutesDeadPrimary: the session's primary shard is down; the
// router must mark it Down after the typed dial failure, land the session
// on the next shard in its ring order, and record the reroute durably.
func TestRouterReroutesDeadPrimary(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 256)
	live := startServer(t, Config{FinalDir: filepath.Join(t.TempDir(), "final")})
	dead := deadAddr(t)
	shards := []string{dead, live.addr}
	session := sessionWithPrimary(t, shards, dead)

	statePath := filepath.Join(t.TempDir(), "router.rtab")
	// Long probe backoff: the dead shard must stay down for the test.
	rh := startRouter(t, RouterConfig{
		Shards: shards, StatePath: statePath,
		ProbeBackoffBase: time.Hour, ProbeBackoffMax: time.Hour,
	})

	stats, err := Push(context.Background(), ClientConfig{
		Addr: rh.addr, SessionID: session, Workload: "linkedlist", Sites: sites,
	}, frames)
	if err != nil {
		t.Fatalf("push through router with dead primary: %v", err)
	}
	if stats.FramesAcked != len(frames) {
		t.Errorf("acked %d of %d frames", stats.FramesAcked, len(frames))
	}
	if got := rh.r.health.downShards(); len(got) != 1 || got[0] != dead {
		t.Errorf("downShards = %v, want [%s]", got, dead)
	}

	// The reroute is pinned in memory and durable on disk.
	rh.r.mu.Lock()
	pinned := rh.r.routes[session]
	rh.r.mu.Unlock()
	if pinned != live.addr {
		t.Errorf("session pinned to %q, want %q", pinned, live.addr)
	}
	st, err := checkpoint.LoadRouterTable(statePath)
	if err != nil {
		t.Fatalf("load persisted reroute table: %v", err)
	}
	if st.Routes[session] != live.addr {
		t.Errorf("persisted route = %q, want %q", st.Routes[session], live.addr)
	}

	// A new router given the same state file adopts the pin.
	rh.shutdown(t)
	rh2 := startRouter(t, RouterConfig{
		Shards: shards, StatePath: statePath,
		ProbeBackoffBase: time.Hour, ProbeBackoffMax: time.Hour,
	})
	rh2.r.mu.Lock()
	adopted := rh2.r.routes[session]
	rh2.r.mu.Unlock()
	if adopted != live.addr {
		t.Errorf("restarted router adopted route %q, want %q", adopted, live.addr)
	}
	rh2.shutdown(t)
	live.shutdown(t)
}

// TestRouterOnPrimaryPersistsNothing: the common case — session lands on
// its ring primary — must leave no reroute table behind.
func TestRouterOnPrimaryPersistsNothing(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 256)
	live := startServer(t, Config{})
	shards := []string{live.addr}
	statePath := filepath.Join(t.TempDir(), "router.rtab")
	rh := startRouter(t, RouterConfig{Shards: shards, StatePath: statePath})
	if _, err := Push(context.Background(), ClientConfig{
		Addr: rh.addr, SessionID: "home", Workload: "linkedlist", Sites: sites,
	}, frames); err != nil {
		t.Fatalf("push: %v", err)
	}
	if _, err := os.Stat(statePath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("on-primary session persisted a reroute table: %v", err)
	}
	rh.shutdown(t)
	live.shutdown(t)
}

// TestRouterDiscardsCorruptStateTable: a damaged reroute table must not
// stop the router — primary routing is always safe — and must not crash.
func TestRouterDiscardsCorruptStateTable(t *testing.T) {
	testutil.LeakCheck(t)
	statePath := filepath.Join(t.TempDir(), "router.rtab")
	if err := os.WriteFile(statePath, []byte("ORMRTAB\x01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rh := startRouter(t, RouterConfig{Shards: []string{deadAddr(t)}, StatePath: statePath})
	rh.r.mu.Lock()
	n := len(rh.r.routes)
	rh.r.mu.Unlock()
	if n != 0 {
		t.Errorf("corrupt table produced %d routes, want 0", n)
	}
	rh.shutdown(t)
}

// rawHello dials addr and performs the preamble+Hello exchange by hand,
// returning the first reply message.
func rawHello(t *testing.T, addr, session string) (MsgType, []byte, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	bw.WriteString(ProtoMagic)
	writeMsg(bw, MsgHello, encodeHello(&Hello{SessionID: session, Workload: "linkedlist"}))
	if err := bw.Flush(); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	mt, body, err := readMsg(bufio.NewReader(conn))
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	return mt, body, conn
}

// TestRouterPropagatesShardRetryHint: a shard's own Retry (admission
// control) is relayed verbatim; after the shard dies, the router keeps
// answering for it with the shard's last self-reported hint rather than
// the router's generic fallback.
func TestRouterPropagatesShardRetryHint(t *testing.T) {
	testutil.LeakCheck(t)
	const shardHint = 123 * time.Millisecond
	shard := startServer(t, Config{MaxSessions: 1, RetryAfter: shardHint})
	rh := startRouter(t, RouterConfig{
		Shards: []string{shard.addr}, RetryAfter: 777 * time.Millisecond,
		ProbeBackoffBase: time.Hour, ProbeBackoffMax: time.Hour,
	})

	// Occupy the shard's only session slot directly.
	mt, _, occupier := rawHello(t, shard.addr, "occupier")
	if mt != MsgWelcome {
		t.Fatalf("occupier handshake: got %v, want Welcome", mt)
	}
	defer occupier.Close()

	// Admission refusal through the router: the shard's Retry, verbatim.
	mt, body, conn := rawHello(t, rh.addr, "overflow")
	conn.Close()
	if mt != MsgRetry {
		t.Fatalf("through-router admission: got %v, want Retry", mt)
	}
	if ms, err := parseUvarintBody(mt, body); err != nil || time.Duration(ms)*time.Millisecond != shardHint {
		t.Errorf("relayed hint = %dms (%v), want %v", ms, err, shardHint)
	}

	// Kill the shard. The next Hello fails its dial, the shard goes Down,
	// and the router refuses on its behalf — with the shard's hint.
	occupier.Close()
	shard.srv.Kill()
	<-shard.done
	mt, body, conn = rawHello(t, rh.addr, "after-death")
	conn.Close()
	if mt != MsgRetry {
		t.Fatalf("dead-shard refusal: got %v, want Retry", mt)
	}
	if ms, err := parseUvarintBody(mt, body); err != nil || time.Duration(ms)*time.Millisecond != shardHint {
		t.Errorf("dead-shard hint = %dms (%v), want the shard's own %v", ms, err, shardHint)
	}
	rh.shutdown(t)
}

// TestRouterRefuseFallbackHint: when no shard ever supplied a hint, the
// router's configured RetryAfter is what clients see.
func TestRouterRefuseFallbackHint(t *testing.T) {
	testutil.LeakCheck(t)
	const fallback = 77 * time.Millisecond
	rh := startRouter(t, RouterConfig{
		Shards: []string{deadAddr(t)}, RetryAfter: fallback,
		ProbeBackoffBase: time.Hour, ProbeBackoffMax: time.Hour,
	})
	mt, body, conn := rawHello(t, rh.addr, "nobody-home")
	conn.Close()
	if mt != MsgRetry {
		t.Fatalf("got %v, want Retry", mt)
	}
	if ms, err := parseUvarintBody(mt, body); err != nil || time.Duration(ms)*time.Millisecond != fallback {
		t.Errorf("fallback hint = %dms (%v), want %v", ms, err, fallback)
	}
	rh.shutdown(t)
}

// TestClusterReportShardCountInvariant is the merge plane's core claim in
// unit form: the same completed sessions produce byte-identical cluster
// artifacts whether they were ingested by one shard or three.
func TestClusterReportShardCountInvariant(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 256)
	sessions := []string{"alpha", "beta", "gamma", "delta"}

	run := func(shards int) map[string][]byte {
		t.Helper()
		c, err := NewCluster(ClusterConfig{Dir: t.TempDir(), Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sessions {
			if _, err := Push(context.Background(), ClientConfig{
				Addr: c.Addr(), SessionID: s, Workload: "linkedlist", Sites: sites,
			}, frames); err != nil {
				t.Fatalf("shards=%d session %s: %v", shards, s, err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			t.Fatalf("shards=%d shutdown: %v", shards, err)
		}
		outDir := t.TempDir()
		stats, err := c.Merge(outDir)
		if err != nil {
			t.Fatalf("shards=%d merge: %v", shards, err)
		}
		if stats.Sessions != len(sessions) || stats.Degraded != 0 || stats.Skipped != 0 {
			t.Errorf("shards=%d stats = %+v, want %d clean sessions", shards, stats, len(sessions))
		}
		out := make(map[string][]byte)
		for _, name := range []string{"cluster.leap", "cluster.stride", "cluster.whomp"} {
			b, err := os.ReadFile(filepath.Join(outDir, name))
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			out[name] = b
		}
		return out
	}

	one := run(1)
	three := run(3)
	for name, want := range one {
		if !bytes.Equal(three[name], want) {
			t.Errorf("%s: 3-shard cluster report differs from 1-shard", name)
		}
	}
}

// TestClusterApproxMergeShardCountInvariant: sessions ingested in -approx
// mode end on the sketch-stride rung, and the merge plane folds their
// fixed-memory sketches into a cluster.approx artifact that is
// byte-identical at any shard count. The shared sketch seed is what makes
// per-session count-min cells and bloom bits comparable; the
// sorted-session fold order removes the shard topology from the result.
func TestClusterApproxMergeShardCountInvariant(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 256)
	sessions := []string{"alpha", "beta", "gamma", "delta"}

	run := func(shards int) []byte {
		t.Helper()
		c, err := NewCluster(ClusterConfig{
			Dir: t.TempDir(), Shards: shards, Shard: Config{Approx: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sessions {
			if _, err := Push(context.Background(), ClientConfig{
				Addr: c.Addr(), SessionID: s, Workload: "linkedlist", Sites: sites,
			}, frames); err != nil {
				t.Fatalf("shards=%d session %s: %v", shards, s, err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			t.Fatalf("shards=%d shutdown: %v", shards, err)
		}
		outDir := t.TempDir()
		stats, err := c.Merge(outDir)
		if err != nil {
			t.Fatalf("shards=%d merge: %v", shards, err)
		}
		if stats.Sessions != len(sessions) || stats.Approx != len(sessions) || stats.Skipped != 0 {
			t.Errorf("shards=%d stats = %+v, want %d approx sessions", shards, stats, len(sessions))
		}
		b, err := os.ReadFile(filepath.Join(outDir, "cluster.approx"))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return b
	}

	one := run(1)
	four := run(4)
	if !bytes.Equal(one, four) {
		t.Error("cluster.approx: 4-shard report differs from 1-shard")
	}
	for _, want := range []string{
		"# approximate profile (merged)", "sessions 4",
		"epsilon ", "delta ", "error-bound ",
	} {
		if !bytes.Contains(one, []byte(want)) {
			t.Errorf("cluster.approx missing %q", want)
		}
	}
}

// TestMergeDuplicateSessionTyped: the same session completed on two
// shards breaks the disjoint-union premise and must surface as the typed
// *MergeError, never a silently merged report.
func TestMergeDuplicateSessionTyped(t *testing.T) {
	testutil.LeakCheck(t)
	frames, sites, _ := makeFrames(t, "linkedlist", 256)
	finalDir := filepath.Join(t.TempDir(), "final")
	ts := startServer(t, Config{FinalDir: finalDir})
	if _, err := Push(context.Background(), ClientConfig{
		Addr: ts.addr, SessionID: "dup", Workload: "linkedlist", Sites: sites,
	}, frames); err != nil {
		t.Fatal(err)
	}
	ts.shutdown(t)

	b, err := os.ReadFile(checkpoint.FinalPathFor(finalDir, "dup"))
	if err != nil {
		t.Fatal(err)
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	for _, d := range []string{dirA, dirB} {
		if err := os.WriteFile(checkpoint.FinalPathFor(d, "dup"), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err = ClusterReport([]string{dirA, dirB}, t.TempDir(), 0, nil)
	var me *MergeError
	if !errors.As(err, &me) {
		t.Fatalf("want *MergeError, got %v", err)
	}
	if me.Session != "dup" {
		t.Errorf("MergeError.Session = %q, want dup", me.Session)
	}
}

// TestMergeSkipsCorruptFinalState: a damaged final file is skipped with a
// count, like resume treats damaged checkpoints — never a failed merge.
func TestMergeSkipsCorruptFinalState(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(checkpoint.FinalPathFor(dir, "broken"), []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := ClusterReport([]string{dir}, t.TempDir(), 0, nil)
	if err != nil {
		t.Fatalf("merge over corrupt final: %v", err)
	}
	if stats.Skipped != 1 || stats.Sessions != 0 {
		t.Errorf("stats = %+v, want 1 skipped, 0 sessions", stats)
	}
}

// FuzzRouter throws arbitrary bytes at the routing path — the only bytes
// the router itself interprets. The invariant matches FuzzSession's:
// never a panic, never a leaked goroutine, always a settled connection,
// whether the bytes die in the preamble, the Hello, or past the splice.
func FuzzRouter(f *testing.F) {
	frames, _, _ := makeFrames(f, "linkedlist", 256)
	hello := encodeHello(&Hello{SessionID: "fz", Workload: "w"})

	var valid bytes.Buffer
	valid.WriteString(ProtoMagic)
	writeMsg(&valid, MsgHello, hello)

	f.Add([]byte{})                             // nothing at all
	f.Add([]byte("GET / HTTP/1.1"))             // wrong protocol entirely
	f.Add([]byte("ORMP\x02"))                   // wrong version byte
	f.Add(valid.Bytes())                        // clean handshake, then EOF
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated Hello
	// Oversized length prefix: claims a body far beyond MaxBody.
	f.Add(append([]byte(ProtoMagic), byte(MsgHello), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))
	// Hello that parses, then garbage where frames should be — this one
	// crosses into the splice and the shard is the one that objects.
	var g bytes.Buffer
	g.Write(valid.Bytes())
	writeMsg(&g, MsgFrame, encodeFrameMsg(0, frames[0]))
	g.WriteString("\xde\xad\xbe\xef not a message")
	f.Add(g.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		testutil.LeakCheck(t)
		shard := startServer(t, Config{
			IdleTimeout: 250 * time.Millisecond, RetryAfter: time.Millisecond,
		})
		rh := startRouter(t, RouterConfig{
			Shards: []string{shard.addr}, HelloTimeout: 2 * time.Second,
		})
		conn, err := net.Dial("tcp", rh.addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(data)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		br := bufio.NewReader(conn)
		for {
			if _, _, err := readMsg(br); err != nil {
				break
			}
		}
		conn.Close()
		rh.shutdown(t)
		shard.shutdown(t)
	})
}
