package serve

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"ormprof/internal/checkpoint"
	"ormprof/internal/leap"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
)

// pipeline is one session's profiling state: the WHOMP and LEAP pipelines
// (each with its own OMC, mirroring the offline tools) plus the lossless
// stride profiler. It is what checkpoints snapshot and what the final
// profiles are built from. The SCCs are deliberately the sequential ones:
// exact snapshots need single-threaded state, and the parallel stages are
// defined to produce byte-identical profiles anyway, so daemon output
// matches offline runs at any worker count.
type pipeline struct {
	workload string
	sites    map[trace.SiteID]string

	whompOMC *omc.OMC
	whompSCC *whomp.SCC
	whompCDC *profiler.CDC

	leapOMC *omc.OMC
	leapSCC *leap.SCC
	leapCDC *profiler.CDC

	ideal *stride.Ideal

	framesApplied uint64
	eventsApplied uint64
}

// newPipeline builds a fresh pipeline for a session.
func newPipeline(workload string, sites map[trace.SiteID]string, maxLMADs int) *pipeline {
	p := &pipeline{
		workload: workload,
		sites:    sites,
		whompOMC: omc.New(sites),
		whompSCC: whomp.NewSCC(),
		leapOMC:  omc.New(sites),
		leapSCC:  leap.NewSCC(maxLMADs),
		ideal:    stride.NewIdeal(),
	}
	p.whompCDC = profiler.NewCDC(p.whompOMC, p.whompSCC)
	p.leapCDC = profiler.NewCDC(p.leapOMC, p.leapSCC)
	return p
}

// pipelineFromState reconstructs a pipeline from a checkpoint.
func pipelineFromState(st *checkpoint.State) (*pipeline, error) {
	wOMC, err := omc.FromSnapshot(st.WhompOMC)
	if err != nil {
		return nil, fmt.Errorf("serve: restore WHOMP OMC: %w", err)
	}
	wSCC, err := whomp.SCCFromSnapshot(st.Whomp)
	if err != nil {
		return nil, fmt.Errorf("serve: restore WHOMP SCC: %w", err)
	}
	lOMC, err := omc.FromSnapshot(st.LeapOMC)
	if err != nil {
		return nil, fmt.Errorf("serve: restore LEAP OMC: %w", err)
	}
	lSCC, err := leap.SCCFromSnapshot(st.Leap)
	if err != nil {
		return nil, fmt.Errorf("serve: restore LEAP SCC: %w", err)
	}
	ideal, err := stride.FromSnapshot(st.Stride)
	if err != nil {
		return nil, fmt.Errorf("serve: restore stride profiler: %w", err)
	}
	p := &pipeline{
		workload:      st.Workload,
		sites:         st.SitesMap(),
		whompOMC:      wOMC,
		whompSCC:      wSCC,
		leapOMC:       lOMC,
		leapSCC:       lSCC,
		ideal:         ideal,
		framesApplied: st.FramesApplied,
		eventsApplied: st.EventsApplied,
	}
	p.whompCDC = profiler.NewCDC(p.whompOMC, p.whompSCC)
	p.leapCDC = profiler.NewCDC(p.leapOMC, p.leapSCC)
	return p, nil
}

// applyFrame feeds one decoded frame's events through every profiler and
// advances the cursor.
func (p *pipeline) applyFrame(events []trace.Event) {
	for _, e := range events {
		p.whompCDC.Emit(e)
		p.leapCDC.Emit(e)
		p.ideal.Emit(e)
	}
	p.framesApplied++
	p.eventsApplied += uint64(len(events))
}

// state snapshots the pipeline into checkpoint form.
func (p *pipeline) state(sessionID string) (*checkpoint.State, error) {
	wo, err := p.whompOMC.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot WHOMP OMC: %w", err)
	}
	ws, err := p.whompSCC.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot WHOMP SCC: %w", err)
	}
	lo, err := p.leapOMC.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot LEAP OMC: %w", err)
	}
	return &checkpoint.State{
		SessionID:     sessionID,
		Workload:      p.workload,
		Sites:         checkpoint.SortSites(p.sites),
		FramesApplied: p.framesApplied,
		EventsApplied: p.eventsApplied,
		WhompOMC:      wo,
		Whomp:         ws,
		LeapOMC:       lo,
		Leap:          p.leapSCC.Snapshot(),
		Stride:        p.ideal.Snapshot(),
	}, nil
}

// profiles finalizes the pipeline into its three profile artifacts.
func (p *pipeline) profiles() (*whomp.Profile, *leap.Profile, *stride.Ideal) {
	p.whompCDC.Finish()
	p.leapCDC.Finish()
	wp := &whomp.Profile{
		Workload: p.workload,
		Records:  p.whompSCC.Records(),
		Grammars: p.whompSCC.Grammars(),
		Objects:  whomp.FromOMC(p.whompOMC),
	}
	return wp, p.leapSCC.BuildProfile(p.workload), p.ideal
}

// WriteStrideReport serializes a stride report deterministically: the
// lossless profiler's strongly strided instructions and the LEAP-derived
// estimate, one instruction per line. Both the daemon and offline
// comparisons use this one serialization, so byte equality is meaningful.
func WriteStrideReport(w *bufio.Writer, ideal map[trace.InstrID]stride.Info, est map[trace.InstrID]stride.Info) error {
	fmt.Fprintf(w, "# stride report\n")
	fmt.Fprintf(w, "ideal %d\n", len(ideal))
	for _, id := range stride.SortedIDs(ideal) {
		in := ideal[id]
		fmt.Fprintf(w, "%d %d %.4f\n", id, in.Stride, in.Frac)
	}
	fmt.Fprintf(w, "leap %d\n", len(est))
	for _, id := range stride.SortedIDs(est) {
		in := est[id]
		fmt.Fprintf(w, "%d %d %.4f\n", id, in.Stride, in.Frac)
	}
	fmt.Fprintf(w, "score %.2f\n", stride.Score(ideal, est))
	return w.Flush()
}

// writeArtifact writes bytes atomically (tmp + rename) so a reader never
// sees a half-written profile.
func writeArtifact(path string, write func(*bufio.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// writeProfiles renders the three final artifacts into dir:
// <workload>.whomp, <workload>.leap, and <workload>.stride.
func (p *pipeline) writeProfiles(dir string) error {
	wp, lp, ideal := p.profiles()
	base := filepath.Join(dir, sanitizeName(p.workload))
	if err := writeArtifact(base+".whomp", func(w *bufio.Writer) error {
		_, err := wp.WriteTo(w)
		return err
	}); err != nil {
		return fmt.Errorf("serve: write WHOMP profile: %w", err)
	}
	if err := writeArtifact(base+".leap", func(w *bufio.Writer) error {
		_, err := lp.WriteTo(w)
		return err
	}); err != nil {
		return fmt.Errorf("serve: write LEAP profile: %w", err)
	}
	if err := writeArtifact(base+".stride", func(w *bufio.Writer) error {
		return WriteStrideReport(w, ideal.StronglyStrided(), stride.FromLEAP(lp))
	}); err != nil {
		return fmt.Errorf("serve: write stride report: %w", err)
	}
	return nil
}

// sanitizeName makes a workload name safe as a file-name stem.
func sanitizeName(name string) string {
	if name == "" {
		return "workload"
	}
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
