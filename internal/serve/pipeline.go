package serve

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"ormprof/internal/checkpoint"
	"ormprof/internal/govern"
	"ormprof/internal/leap"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
)

// pipelineMode is one session's full profiling state: the WHOMP and LEAP
// pipelines (each with its own OMC, mirroring the offline tools) plus the
// lossless stride profiler. It is what checkpoints snapshot and what the
// final profiles are built from. The SCCs are deliberately the sequential
// ones: exact snapshots need single-threaded state, and the parallel
// stages are defined to produce byte-identical profiles anyway, so daemon
// output matches offline runs at any worker count.
//
// It implements govern.Mode, so a session's degradation ladder can
// account and, over budget, discard it.
type pipelineMode struct {
	whompOMC *omc.OMC
	whompSCC *whomp.SCC
	whompCDC *profiler.CDC

	leapOMC *omc.OMC
	leapSCC *leap.SCC
	leapCDC *profiler.CDC

	ideal *stride.Ideal
}

func newPipelineMode(sites map[trace.SiteID]string, maxLMADs int) *pipelineMode {
	m := &pipelineMode{
		whompOMC: omc.New(sites),
		whompSCC: whomp.NewSCC(),
		leapOMC:  omc.New(sites),
		leapSCC:  leap.NewSCC(maxLMADs),
		ideal:    stride.NewIdeal(),
	}
	m.whompCDC = profiler.NewCDC(m.whompOMC, m.whompSCC)
	m.leapCDC = profiler.NewCDC(m.leapOMC, m.leapSCC)
	return m
}

func (m *pipelineMode) Emit(e trace.Event) {
	m.whompCDC.Emit(e)
	m.leapCDC.Emit(e)
	m.ideal.Emit(e)
}

func (m *pipelineMode) Footprint() int64 {
	return m.whompOMC.Footprint() + m.whompSCC.Footprint() +
		m.leapOMC.Footprint() + m.leapSCC.Footprint() + m.ideal.Footprint()
}

// profiles finalizes the mode into its three profile artifacts.
func (m *pipelineMode) profiles(workload string) (*whomp.Profile, *leap.Profile, *stride.Ideal) {
	m.whompCDC.Finish()
	m.leapCDC.Finish()
	wp := &whomp.Profile{
		Workload: workload,
		Records:  m.whompSCC.Records(),
		Grammars: m.whompSCC.Grammars(),
		Objects:  whomp.FromOMC(m.whompOMC),
	}
	return wp, m.leapSCC.BuildProfile(workload), m.ideal
}

// pipeline is one session's profiling state behind its degradation
// ladder. Every session is governed — with no budget configured the
// ladder accounts footprint but never trips, so ungoverned behavior is
// unchanged — and the ladder is what checkpoints capture alongside the
// pipeline snapshots, so a resumed session continues on the same rung.
type pipeline struct {
	workload string
	sites    map[trace.SiteID]string
	maxLMADs int

	lad      *govern.Ladder
	governed bool // a session or global budget is configured

	framesApplied uint64
	eventsApplied uint64
}

// sessionSeed derives the deterministic site-sampling seed from the
// session ID, so the sampled-rung subset is stable across reconnects and
// server restarts of the same session.
func sessionSeed(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// newPipeline builds a fresh pipeline for a session. budget may be nil
// (account-only). With approx set the session's ladder starts directly at
// the sketch-stride rung (approximate mode) instead of full profiling.
func newPipeline(workload string, sites map[trace.SiteID]string, maxLMADs int, budget *govern.Budget, seed uint64, governed, approx bool) *pipeline {
	p := &pipeline{
		workload: workload,
		sites:    sites,
		maxLMADs: maxLMADs,
		governed: governed,
	}
	cfg := govern.Config{
		Budget: budget,
		Seed:   seed,
		Full:   func() govern.Mode { return newPipelineMode(sites, maxLMADs) },
	}
	if approx {
		cfg.StartRung = govern.RungSketchStride
	}
	p.lad = govern.NewLadder(cfg)
	return p
}

// pipelineFromState reconstructs a pipeline from a checkpoint. The
// restored footprint is re-accounted into budget, and the ladder resumes
// on the checkpointed rung — a degraded session never silently
// re-escalates to full profiling across a restart.
func pipelineFromState(st *checkpoint.State, maxLMADs int, budget *govern.Budget, governed bool) (*pipeline, error) {
	var mode *pipelineMode
	if st.Ladder == nil || st.Ladder.Rung.FullPipeline() {
		wOMC, err := omc.FromSnapshot(st.WhompOMC)
		if err != nil {
			return nil, fmt.Errorf("serve: restore WHOMP OMC: %w", err)
		}
		wSCC, err := whomp.SCCFromSnapshot(st.Whomp)
		if err != nil {
			return nil, fmt.Errorf("serve: restore WHOMP SCC: %w", err)
		}
		lOMC, err := omc.FromSnapshot(st.LeapOMC)
		if err != nil {
			return nil, fmt.Errorf("serve: restore LEAP OMC: %w", err)
		}
		lSCC, err := leap.SCCFromSnapshot(st.Leap)
		if err != nil {
			return nil, fmt.Errorf("serve: restore LEAP SCC: %w", err)
		}
		ideal, err := stride.FromSnapshot(st.Stride)
		if err != nil {
			return nil, fmt.Errorf("serve: restore stride profiler: %w", err)
		}
		mode = &pipelineMode{
			whompOMC: wOMC,
			whompSCC: wSCC,
			leapOMC:  lOMC,
			leapSCC:  lSCC,
			ideal:    ideal,
		}
		mode.whompCDC = profiler.NewCDC(mode.whompOMC, mode.whompSCC)
		mode.leapCDC = profiler.NewCDC(mode.leapOMC, mode.leapSCC)
	}
	sites := st.SitesMap()
	cfg := govern.Config{
		Budget: budget,
		Seed:   sessionSeed(st.SessionID),
		Full:   func() govern.Mode { return newPipelineMode(sites, maxLMADs) },
	}
	var full govern.Mode
	if mode != nil {
		full = mode
	}
	lad, err := govern.RestoreLadder(cfg, st.Ladder, full)
	if err != nil {
		return nil, fmt.Errorf("serve: restore governance ladder: %w", err)
	}
	return &pipeline{
		workload:      st.Workload,
		sites:         sites,
		maxLMADs:      maxLMADs,
		lad:           lad,
		governed:      governed,
		framesApplied: st.FramesApplied,
		eventsApplied: st.EventsApplied,
	}, nil
}

// applyFrame feeds one decoded frame's events through the ladder and
// advances the cursor.
func (p *pipeline) applyFrame(events []trace.Event) {
	for _, e := range events {
		p.lad.Emit(e)
	}
	p.framesApplied++
	p.eventsApplied += uint64(len(events))
}

// fullMode returns the live full pipeline, or nil below the sampled rung.
func (p *pipeline) fullMode() *pipelineMode {
	m, _ := p.lad.FullMode().(*pipelineMode)
	return m
}

// release returns the pipeline's accounted bytes to the budget tree when
// the session retires, so a long-running server's global watermark tracks
// live sessions only.
func (p *pipeline) release() {
	b := p.lad.Budget()
	b.Add(-b.Used())
}

// state snapshots the pipeline into checkpoint form. Below the sampled
// rung the component snapshots are nil — the session's remaining output
// lives entirely in the ladder snapshot.
func (p *pipeline) state(sessionID string) (*checkpoint.State, error) {
	st := &checkpoint.State{
		SessionID:     sessionID,
		Workload:      p.workload,
		Sites:         checkpoint.SortSites(p.sites),
		FramesApplied: p.framesApplied,
		EventsApplied: p.eventsApplied,
		Ladder:        p.lad.Snapshot(),
	}
	m := p.fullMode()
	if m == nil {
		return st, nil
	}
	wo, err := m.whompOMC.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot WHOMP OMC: %w", err)
	}
	ws, err := m.whompSCC.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot WHOMP SCC: %w", err)
	}
	lo, err := m.leapOMC.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot LEAP OMC: %w", err)
	}
	st.WhompOMC = wo
	st.Whomp = ws
	st.LeapOMC = lo
	st.Leap = m.leapSCC.Snapshot()
	st.Stride = m.ideal.Snapshot()
	return st, nil
}

// WriteStrideReport serializes a stride report deterministically: the
// lossless profiler's strongly strided instructions and the LEAP-derived
// estimate, one instruction per line. Both the daemon and offline
// comparisons use this one serialization, so byte equality is meaningful.
func WriteStrideReport(w *bufio.Writer, ideal map[trace.InstrID]stride.Info, est map[trace.InstrID]stride.Info) error {
	fmt.Fprintf(w, "# stride report\n")
	fmt.Fprintf(w, "ideal %d\n", len(ideal))
	for _, id := range stride.SortedIDs(ideal) {
		in := ideal[id]
		fmt.Fprintf(w, "%d %d %.4f\n", id, in.Stride, in.Frac)
	}
	fmt.Fprintf(w, "leap %d\n", len(est))
	for _, id := range stride.SortedIDs(est) {
		in := est[id]
		fmt.Fprintf(w, "%d %d %.4f\n", id, in.Stride, in.Frac)
	}
	fmt.Fprintf(w, "score %.2f\n", stride.Score(ideal, est))
	return w.Flush()
}

// writeArtifact writes bytes atomically (tmp + rename) so a reader never
// sees a half-written profile.
func writeArtifact(path string, write func(*bufio.Writer) error) error {
	// The tmp name must be unique per writer, not per path: sessions of
	// the same workload flush to the same base path, and two completing
	// concurrently on a shared tmp let one writer rename the other's
	// half-written file away (the loser's rename then fails ENOENT, the
	// flush fails, and retrying clients restream in lockstep and collide
	// again). With unique tmps the last rename wins with a complete file.
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if os.IsNotExist(err) {
		// Self-heal a missing output directory (operator cleanup, a
		// re-provisioned volume) instead of failing every flush until
		// the clients give up — the retry storm is worse than the mkdir.
		if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
			return err
		}
		f, err = os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	}
	if err != nil {
		return err
	}
	tmp := f.Name()
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// writeProfiles renders the final artifacts into dir: <workload>.whomp,
// <workload>.leap, and <workload>.stride while the full pipeline is live
// (full or object-sampled rung), plus <workload>.govern — which mode
// produced the output and the full step history — whenever the session is
// governed or has degraded. Below the sampled rung the .govern report IS
// the output.
func (p *pipeline) writeProfiles(dir string) error {
	base := filepath.Join(dir, sanitizeName(p.workload))
	if m := p.fullMode(); m != nil {
		wp, lp, ideal := m.profiles(p.workload)
		if err := writeArtifact(base+".whomp", func(w *bufio.Writer) error {
			_, err := wp.WriteTo(w)
			return err
		}); err != nil {
			return fmt.Errorf("serve: write WHOMP profile: %w", err)
		}
		if err := writeArtifact(base+".leap", func(w *bufio.Writer) error {
			_, err := lp.WriteTo(w)
			return err
		}); err != nil {
			return fmt.Errorf("serve: write LEAP profile: %w", err)
		}
		if err := writeArtifact(base+".stride", func(w *bufio.Writer) error {
			return WriteStrideReport(w, ideal.StronglyStrided(), stride.FromLEAP(lp))
		}); err != nil {
			return fmt.Errorf("serve: write stride report: %w", err)
		}
	}
	if p.governed || p.lad.Rung() != govern.RungFull {
		if err := writeArtifact(base+".govern", func(w *bufio.Writer) error {
			return p.lad.WriteReport(w)
		}); err != nil {
			return fmt.Errorf("serve: write governance report: %w", err)
		}
	}
	return nil
}

// sanitizeName makes a workload name safe as a file-name stem.
func sanitizeName(name string) string {
	if name == "" {
		return "workload"
	}
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
