package serve

// Session migration: the shard-side half of a live ring change. When the
// topology moves a session's home, the orchestrator (cluster.go) drains
// that one session — not the shard — through four steps, each of which
// preserves Ack == durable:
//
//	Handoff  source extracts the session's full pipeline state, forcing
//	         the owning connection off first (the park/release machinery
//	         from PR 7, driven from outside the session goroutine). The
//	         source keeps the session and its checkpoint: a handoff is a
//	         copy, not a move, until the destination proves it holds it.
//	Adopt    destination reconstructs a pipeline from the state — a full
//	         replay-equivalent validation, the same path crash resume
//	         uses — and durably checkpoints it before registering. Only
//	         after this save returns does the migration have a second
//	         durable copy.
//	Forget   source drops its copy (state, checkpoint file, migrating
//	         flag). Between Adopt and Forget two durable copies exist;
//	         never zero.
//	(router) Repoint + Release — the routing plane's business.
//
// A failure anywhere before Forget aborts with the source untouched
// (AbortHandoff clears the flag); the session simply stays where it was.
// While a session is migrating, the shard refuses its reconnects with
// Retry — the router holds them too, but the shard cannot assume every
// client comes through a router.

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"ormprof/internal/checkpoint"
)

// errUnknownSession marks a handoff target this server holds no state
// for. An orchestrator that scanned SessionIDs moments ago matches on it
// to tell "the session completed in the meantime" (benign — its final
// state is already durable here) from a real migration failure.
var errUnknownSession = errors.New("serve: unknown session")

// SessionIDs lists every session this server holds state for: live,
// parked, and resumed-from-disk but not yet adopted. Sorted, so
// orchestrators migrate in a deterministic order.
func (s *Server) SessionIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions)+len(s.resumed))
	for id := range s.sessions {
		out = append(out, id)
	}
	for id := range s.resumed {
		if _, dup := s.sessions[id]; !dup {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Handoff begins migrating a session away: it marks the session
// migrating (reconnects now draw Retry), forces the owning connection
// off if one is live, waits for the release, and returns a snapshot of
// the session's full state. The source keeps everything until Forget;
// on any failure the migrating mark is rolled back and the session is
// exactly as it was.
func (s *Server) Handoff(id string) (*checkpoint.State, error) {
	s.mu.Lock()
	if s.migrating[id] {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: session %q is already migrating", id)
	}
	st, live := s.sessions[id]
	ck, resumed := s.resumed[id]
	if !live && !resumed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w %q", errUnknownSession, id)
	}
	s.migrating[id] = true
	s.mu.Unlock()

	fail := func(err error) (*checkpoint.State, error) {
		s.AbortHandoff(id)
		return nil, err
	}
	if !live {
		// Pure disk state: nothing owns it, snapshot as-is.
		return ck, nil
	}
	// Force the owner off. Closing the conn ends its read loop; the
	// handler parks (final checkpoint) and releases. The migrating mark
	// set above guarantees no reconnect claims the state in between.
	for {
		s.mu.Lock()
		if !st.active {
			s.mu.Unlock()
			break
		}
		ch := st.released
		conn := st.conn
		s.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		select {
		case <-ch:
		case <-s.killCh:
			return fail(fmt.Errorf("serve: session %q: server killed during handoff", id))
		case <-time.After(s.cfg.IdleTimeout):
			return fail(fmt.Errorf("serve: session %q: handoff timed out waiting for release", id))
		}
	}
	// Parked and marked migrating: this goroutine is the sole owner now,
	// the same ownership transfer Shutdown's final flush relies on.
	if st.dirty && !s.saveCheckpoint(st) {
		return fail(fmt.Errorf("serve: session %q: handoff checkpoint failed", id))
	}
	state, err := st.pl.state(id)
	if err != nil {
		return fail(fmt.Errorf("serve: session %q: handoff snapshot: %w", id, err))
	}
	return state, nil
}

// Adopt installs a migrated session's state on this server. The state is
// validated by full reconstruction (the crash-resume path) and durably
// checkpointed BEFORE registration — when Adopt returns nil, this shard
// can crash and still resume the session, which is what lets the source
// Forget its copy. Adopting over a session this server already holds is
// refused: that is a split-brain signal, not a retry case.
func (s *Server) Adopt(ck *checkpoint.State) error {
	if ck == nil || ck.SessionID == "" {
		return fmt.Errorf("serve: adopt: state without a session ID")
	}
	pl, err := pipelineFromState(ck, s.cfg.MaxLMADs, s.govRoot.Sub(s.cfg.SessionMemBudget), s.governed())
	if err != nil {
		return fmt.Errorf("serve: adopt %q: state does not reconstruct: %w", ck.SessionID, err)
	}
	if err := checkpoint.Save(checkpoint.PathFor(s.cfg.CheckpointDir, ck.SessionID), ck); err != nil {
		pl.release()
		return fmt.Errorf("serve: adopt %q: %w", ck.SessionID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.sessions[ck.SessionID]; exists {
		pl.release()
		return fmt.Errorf("serve: adopt %q: session already live here", ck.SessionID)
	}
	if s.killed || s.draining {
		pl.release()
		return fmt.Errorf("serve: adopt %q: server is not accepting sessions", ck.SessionID)
	}
	delete(s.resumed, ck.SessionID) // the migrated copy supersedes any stale disk state
	s.sessions[ck.SessionID] = &sessionState{id: ck.SessionID, pl: pl, acked: ck.FramesApplied}
	s.cfg.Logf("session %s: adopted at frame %d", ck.SessionID, ck.FramesApplied)
	return nil
}

// Forget completes a migration at the source: the session's in-memory
// state, resume entry, checkpoint file, and migrating mark all go. Only
// call after the destination's Adopt returned nil.
func (s *Server) Forget(id string) error {
	s.mu.Lock()
	if !s.migrating[id] {
		s.mu.Unlock()
		return fmt.Errorf("serve: forget %q: session is not migrating", id)
	}
	st, live := s.sessions[id]
	delete(s.sessions, id)
	delete(s.resumed, id)
	delete(s.migrating, id)
	s.mu.Unlock()
	if live {
		st.pl.release()
	}
	os.Remove(checkpoint.PathFor(s.cfg.CheckpointDir, id))
	return nil
}

// AbortHandoff rolls a failed migration back: the migrating mark clears
// and the session (still fully present — Handoff never removes) serves
// reconnects again.
func (s *Server) AbortHandoff(id string) {
	s.mu.Lock()
	delete(s.migrating, id)
	s.mu.Unlock()
}
