package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"ormprof/internal/checkpoint"
	"ormprof/internal/tracefmt"
)

// sessionItem is one unit of work handed from a session's reader
// goroutine to its worker: a frame, a Done marker, or a terminal error.
type sessionItem struct {
	mt    MsgType
	index uint64 // frame index, or total frame count for Done
	frame []byte
	err   error
}

// readLoop is the session's reader goroutine: it pulls messages off the
// socket and pushes them into the bounded items channel. When the
// channel is full the send blocks, the reader stops draining the
// socket, and TCP flow control pushes back on the client — a slow
// pipeline costs the sender throughput, never the server memory.
// Each read carries the idle deadline, so a stalled client surfaces as
// a timeout error rather than a wedged goroutine.
func (s *Server) readLoop(conn net.Conn, br *bufio.Reader, items chan<- sessionItem) {
	defer close(items)
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		mt, body, err := readMsg(br)
		if err != nil {
			items <- sessionItem{err: err}
			return
		}
		switch mt {
		case MsgFrame:
			idx, frame, err := decodeFrameMsg(body)
			if err != nil {
				items <- sessionItem{err: err}
				return
			}
			s.queuedBytes.Add(int64(len(frame)))
			items <- sessionItem{mt: mt, index: idx, frame: frame}
		case MsgDone:
			total, err := parseUvarintBody(mt, body)
			if err != nil {
				items <- sessionItem{err: err}
				return
			}
			items <- sessionItem{mt: mt, index: total}
			return
		default:
			items <- sessionItem{err: protof("unexpected %s from client", mt)}
			return
		}
	}
}

// sendMsg writes one message with a write deadline, so a client that
// stops reading cannot wedge the worker.
func (s *Server) sendMsg(conn net.Conn, bw *bufio.Writer, t MsgType, body []byte) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.IdleTimeout))
	if err := writeMsg(bw, t, body); err != nil {
		return err
	}
	return bw.Flush()
}

// checkpointAndAck durably saves the session's state, then acknowledges
// the covered cursor. Ordering is the protocol's core invariant: the
// Ack goes out only after the rename that commits the checkpoint, so a
// crash can never leave the client believing in progress the server
// lost.
func (s *Server) checkpointAndAck(conn net.Conn, bw *bufio.Writer, st *sessionState) bool {
	if !s.saveCheckpoint(st) {
		return false
	}
	return s.sendMsg(conn, bw, MsgAck, uvarintBody(st.acked)) == nil
}

// saveCheckpoint persists the session state without acknowledging
// (used when parking a session whose connection is already gone).
func (s *Server) saveCheckpoint(st *sessionState) bool {
	ck, err := st.pl.state(st.id)
	if err != nil {
		s.cfg.Logf("session %s: snapshot failed: %v", st.id, err)
		return false
	}
	if err := checkpoint.Save(checkpoint.PathFor(s.cfg.CheckpointDir, st.id), ck); err != nil {
		s.cfg.Logf("session %s: checkpoint failed: %v", st.id, err)
		return false
	}
	st.acked = st.pl.framesApplied
	st.dirty = false
	return true
}

// runSession is the session worker: it applies frames in order,
// checkpoints on the frame-count and interval cadences, and settles the
// session (complete, park, or discard) when the stream ends.
func (s *Server) runSession(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, st *sessionState) {
	items := make(chan sessionItem, s.cfg.QueueFrames)
	go s.readLoop(conn, br, items)
	defer func() {
		// Unblock and drain the reader before returning, keeping the
		// queued-bytes ledger exact; handleConn's defer re-closes the
		// conn harmlessly.
		conn.Close()
		for it := range items {
			if it.frame != nil {
				s.queuedBytes.Add(-int64(len(it.frame)))
			}
		}
	}()

	park := func() {
		// Order matters: the checkpoint file is the client's reconnect
		// signal, so the session must already read as parting (see
		// resolveSession) by the time the file is visible.
		s.markParting(st)
		if st.dirty {
			s.saveCheckpoint(st)
		}
	}
	ticker := time.NewTicker(s.cfg.CheckpointInterval)
	defer ticker.Stop()
	drainCh := s.drainCh
	for {
		select {
		case <-s.killCh:
			// Crash simulation: drop everything not already durable.
			return
		case <-drainCh:
			// Graceful shutdown: keep applying what the client sends —
			// Shutdown force-closes the connection if the deadline
			// passes — but only react to the closure once.
			drainCh = nil
		case <-ticker.C:
			if st.dirty && !s.checkpointAndAck(conn, bw, st) {
				park()
				return
			}
		case it, ok := <-items:
			if !ok {
				// Reader finished without a terminal item: connection
				// gone. Park for reconnect.
				park()
				return
			}
			if it.err != nil {
				if errors.Is(it.err, ErrProtocol) {
					s.sendMsg(conn, bw, MsgErr, []byte(it.err.Error()))
				}
				s.cfg.Logf("session %s: connection ended: %v", st.id, it.err)
				park()
				return
			}
			switch it.mt {
			case MsgFrame:
				s.queuedBytes.Add(-int64(len(it.frame)))
				if !s.applySessionFrame(conn, bw, st, it) {
					park()
					return
				}
			case MsgDone:
				s.finishSession(conn, bw, st, it.index)
				return
			}
		}
	}
}

// applySessionFrame handles one Frame message. Frames below the cursor
// are duplicates from a resend after reconnect and are skipped; frames
// above it mean the client and server disagree about history, which is
// terminal for the connection (the client re-syncs via Welcome).
func (s *Server) applySessionFrame(conn net.Conn, bw *bufio.Writer, st *sessionState, it sessionItem) bool {
	switch {
	case it.index < st.pl.framesApplied:
		return true
	case it.index > st.pl.framesApplied:
		s.sendMsg(conn, bw, MsgErr,
			[]byte(fmt.Sprintf("frame gap: got %d, expected %d", it.index, st.pl.framesApplied)))
		return false
	}
	events, err := tracefmt.DecodeFrameInto(st.evbuf[:0], it.frame)
	if err != nil {
		// The frame was damaged in transit; the connection is suspect.
		// Drop it — the client re-sends from the durable cursor.
		s.sendMsg(conn, bw, MsgErr, []byte(fmt.Sprintf("frame %d: %v", it.index, err)))
		return false
	}
	// Frame boundary: honor a pending load-shedding request before
	// applying more events (only this worker may touch the ladder).
	if st.stepReq.Swap(false) {
		if st.pl.lad.ForceStep() {
			s.cfg.Logf("session %s: stepped down to %s (global budget)", st.id, st.pl.lad.Rung())
		}
	}
	st.pl.applyFrame(events)
	st.evbuf = events // keep the grown buffer for the next frame
	st.dirty = true
	s.enforceGlobal(st)
	if st.pl.framesApplied-st.acked >= uint64(s.cfg.CheckpointEvery) {
		return s.checkpointAndAck(conn, bw, st)
	}
	return true
}

// finishSession handles Done: verify the counts line up, flush the
// final profiles, say Bye, and retire the session and its checkpoint.
func (s *Server) finishSession(conn net.Conn, bw *bufio.Writer, st *sessionState, total uint64) {
	if total != st.pl.framesApplied {
		s.sendMsg(conn, bw, MsgErr,
			[]byte(fmt.Sprintf("done at %d but %d frames applied", total, st.pl.framesApplied)))
		if st.dirty {
			s.saveCheckpoint(st)
		}
		return
	}
	if err := st.pl.writeProfiles(s.cfg.OutputDir); err != nil {
		s.cfg.Logf("session %s: %v", st.id, err)
		s.sendMsg(conn, bw, MsgErr, []byte("profile flush failed"))
		return
	}
	// The final state must be durable before the Bye: the merge plane
	// reads these .final states, and a Bye the client saw must imply the
	// cluster report will include the session — the same checkpoint-
	// before-ack discipline, applied to completion.
	if s.cfg.FinalDir != "" {
		ck, err := st.pl.state(st.id)
		if err == nil {
			err = checkpoint.Save(checkpoint.FinalPathFor(s.cfg.FinalDir, st.id), ck)
		}
		if err != nil {
			s.cfg.Logf("session %s: final state: %v", st.id, err)
			s.sendMsg(conn, bw, MsgErr, []byte("final state flush failed"))
			return
		}
	}
	s.sendMsg(conn, bw, MsgBye, uvarintBody(st.pl.framesApplied))
	s.cfg.Logf("session %s: complete (%d frames, %d events)", st.id, st.pl.framesApplied, st.pl.eventsApplied)
	s.complete(st)
}
