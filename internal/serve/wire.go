// Package serve implements the ormpd trace-ingestion service: a TCP
// server that feeds ORMTRACE-v3 frames into the streaming profiling
// pipelines, with bounded per-session queues (backpressure), admission
// control, periodic crash-consistent checkpoints, and a reconnecting
// client that resumes from the last acknowledged frame.
//
// # Wire protocol (ORMP/1)
//
// A connection starts with the 5-byte preamble "ORMP" + version (1),
// sent by the client. Both directions then exchange messages framed as
//
//	type   1 byte
//	length uvarint (body byte count, bounded by MaxBody)
//	body   length bytes
//
// Client→server: Hello (session ID, workload, site table), Frame
// (uvarint frame index + one standalone ORMTRACE-v3 frame, CRC and all),
// Done (uvarint total frame count). Server→client: Welcome (uvarint
// durable cursor — the index the client must resume sending from), Retry
// (uvarint suggested retry-after in milliseconds; sent instead of
// Welcome when admission control rejects the connection), Ack (uvarint
// durable cursor), Bye (uvarint frames applied; the session completed
// and profiles are flushed), Err (UTF-8 reason; terminal).
//
// The server acknowledges a frame only after a checkpoint holding it has
// been durably written (atomic rename + fsync), so the Welcome cursor
// after a crash is always ≤ every Ack the client ever saw — the client's
// unacked-frame window is guaranteed to cover the gap. See
// docs/FORMATS.md ("ORMP/1 wire protocol") and docs/ARCHITECTURE.md
// ("Service layer").
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
)

// ProtoMagic is the connection preamble: protocol name + version byte.
const ProtoMagic = "ORMP\x01"

// MsgType identifies one wire message.
type MsgType byte

// Client→server and server→client message types.
const (
	MsgHello MsgType = 0x01
	MsgFrame MsgType = 0x02
	MsgDone  MsgType = 0x03

	MsgWelcome MsgType = 0x10
	MsgRetry   MsgType = 0x11
	MsgAck     MsgType = 0x12
	MsgBye     MsgType = 0x13
	MsgErr     MsgType = 0x1F
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgFrame:
		return "Frame"
	case MsgDone:
		return "Done"
	case MsgWelcome:
		return "Welcome"
	case MsgRetry:
		return "Retry"
	case MsgAck:
		return "Ack"
	case MsgBye:
		return "Bye"
	case MsgErr:
		return "Err"
	}
	return fmt.Sprintf("MsgType(%#02x)", byte(t))
}

// MaxBody bounds every message body: the largest legitimate message is a
// Frame carrying a full-size trace frame plus its index.
const MaxBody = tracefmt.MaxFramePayload + 64

// MaxSessionIDLen bounds the client-chosen session identifier.
const MaxSessionIDLen = 256

// ErrProtocol wraps every wire-level violation (bad preamble, oversized
// body, malformed message). It is terminal for the connection but not for
// the session: the peer may reconnect and resume.
var ErrProtocol = errors.New("serve: protocol error")

func protof(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// writeMsg frames and writes one message.
func writeMsg(w io.Writer, t MsgType, body []byte) error {
	if len(body) > MaxBody {
		return protof("%s body %d bytes exceeds limit %d", t, len(body), MaxBody)
	}
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = byte(t)
	n := binary.PutUvarint(hdr[1:], uint64(len(body)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readMsg reads one message. The returned body is freshly allocated.
func readMsg(br *bufio.Reader) (MsgType, []byte, error) {
	tb, err := br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, protof("message length: %v", err)
	}
	if n > MaxBody {
		return 0, nil, protof("message body %d bytes exceeds limit %d", n, MaxBody)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, protof("message body: %v", err)
	}
	return MsgType(tb), body, nil
}

// readRawMsg reads one message like readMsg but also returns the exact
// bytes as they appeared on the wire (type byte, length prefix, body), so
// the router can forward a message verbatim — ORMP/1 shard-to-shard is
// the same protocol, not a re-encoding, and byte-level forwarding is what
// guarantees it.
func readRawMsg(br *bufio.Reader) (mt MsgType, raw, body []byte, err error) {
	tb, err := br.ReadByte()
	if err != nil {
		return 0, nil, nil, err
	}
	raw = append(raw, tb)
	var n uint64
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			return 0, nil, nil, protof("message length overflows uvarint")
		}
		b, err := br.ReadByte()
		if err != nil {
			return 0, nil, nil, protof("message length: %v", err)
		}
		raw = append(raw, b)
		n |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	if n > MaxBody {
		return 0, nil, nil, protof("message body %d bytes exceeds limit %d", n, MaxBody)
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, nil, protof("message body: %v", err)
	}
	return MsgType(tb), append(raw, body...), body, nil
}

// uvarintBody encodes the single-uvarint body shared by Welcome, Retry,
// Ack, Bye, Done, and the Frame index prefix.
func uvarintBody(v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append([]byte(nil), buf[:binary.PutUvarint(buf[:], v)]...)
}

func parseUvarintBody(t MsgType, body []byte) (uint64, error) {
	v, n := binary.Uvarint(body)
	if n <= 0 || n != len(body) {
		return 0, protof("%s body is not a single uvarint", t)
	}
	return v, nil
}

// MaxAddrHintLen bounds the redirect address a Retry may carry.
const MaxAddrHintLen = 256

// encodeRetry builds a Retry body: the retry-after in milliseconds,
// optionally followed by a redirect address. The address is appended only
// when non-empty, so an ordinary admission-control Retry remains the
// classic single-uvarint body; the extended form is how a standby router
// tells a client where the active router lives (see Router standby mode)
// without inventing a new message type.
func encodeRetry(ms uint64, addr string) []byte {
	b := uvarintBody(ms)
	if addr != "" {
		b = appendString(b, addr)
	}
	return b
}

// decodeRetry parses a Retry body in either form.
func decodeRetry(body []byte) (ms uint64, addr string, err error) {
	sc := &byteScanner{data: body}
	if ms, err = sc.uvarint(); err != nil {
		return 0, "", protof("Retry body lacks a delay")
	}
	if sc.off < len(body) {
		if addr, err = sc.str(MaxAddrHintLen); err != nil {
			return 0, "", err
		}
	}
	if sc.off != len(body) {
		return 0, "", protof("%d trailing bytes after Retry body", len(body)-sc.off)
	}
	return ms, addr, nil
}

// Hello is the session handshake: who is connecting and what trace
// metadata the profiles should carry.
type Hello struct {
	SessionID string
	Workload  string
	Sites     map[trace.SiteID]string
}

func appendString(b []byte, s string) []byte {
	var buf [binary.MaxVarintLen64]byte
	b = append(b, buf[:binary.PutUvarint(buf[:], uint64(len(s)))]...)
	return append(b, s...)
}

func encodeHello(h *Hello) []byte {
	var b []byte
	b = appendString(b, h.SessionID)
	b = appendString(b, h.Workload)
	ids := make([]trace.SiteID, 0, len(h.Sites))
	for id := range h.Sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var buf [binary.MaxVarintLen64]byte
	b = append(b, buf[:binary.PutUvarint(buf[:], uint64(len(ids)))]...)
	for _, id := range ids {
		b = append(b, buf[:binary.PutUvarint(buf[:], uint64(id))]...)
		b = appendString(b, h.Sites[id])
	}
	return b
}

type byteScanner struct {
	data []byte
	off  int
}

func (s *byteScanner) uvarint() (uint64, error) {
	v, n := binary.Uvarint(s.data[s.off:])
	if n <= 0 {
		return 0, protof("malformed uvarint in handshake")
	}
	s.off += n
	return v, nil
}

func (s *byteScanner) str(maxLen uint64) (string, error) {
	n, err := s.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", protof("handshake string %d bytes exceeds limit %d", n, maxLen)
	}
	if uint64(len(s.data)-s.off) < n {
		return "", protof("truncated handshake string")
	}
	out := string(s.data[s.off : s.off+int(n)])
	s.off += int(n)
	return out, nil
}

func decodeHello(body []byte) (*Hello, error) {
	sc := &byteScanner{data: body}
	h := &Hello{}
	var err error
	if h.SessionID, err = sc.str(MaxSessionIDLen); err != nil {
		return nil, err
	}
	if h.SessionID == "" {
		return nil, protof("empty session ID")
	}
	if h.Workload, err = sc.str(tracefmt.MaxNameLen); err != nil {
		return nil, err
	}
	nSites, err := sc.uvarint()
	if err != nil {
		return nil, err
	}
	if nSites > tracefmt.MaxSites {
		return nil, protof("unreasonable site count %d", nSites)
	}
	if nSites > 0 {
		h.Sites = make(map[trace.SiteID]string, nSites)
	}
	for i := uint64(0); i < nSites; i++ {
		id, err := sc.uvarint()
		if err != nil {
			return nil, err
		}
		if id > uint64(^trace.SiteID(0)) {
			return nil, protof("site id %d overflows SiteID", id)
		}
		name, err := sc.str(tracefmt.MaxNameLen)
		if err != nil {
			return nil, err
		}
		h.Sites[trace.SiteID(id)] = name
	}
	if sc.off != len(body) {
		return nil, protof("%d trailing bytes after handshake", len(body)-sc.off)
	}
	return h, nil
}

// encodeFrameMsg builds a Frame message body: the frame's index followed
// by its raw bytes.
func encodeFrameMsg(index uint64, frame []byte) []byte {
	b := uvarintBody(index)
	return append(b, frame...)
}

func decodeFrameMsg(body []byte) (index uint64, frame []byte, err error) {
	v, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, protof("Frame body lacks an index")
	}
	return v, body[n:], nil
}
