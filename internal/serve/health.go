package serve

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// The shard failover state machine. Each shard is Up or Down; nothing
// in between, because the router must make a routing decision on every
// Hello and a three-valued answer just moves the coin flip somewhere
// less testable.
//
//	Up   --typed failure (dial error, reset before first reply)--> Down
//	Down --successful probe--> Up
//
// A Down shard is probed on a capped exponential backoff with seeded
// jitter — ormpush's retry schedule (backoffDelay), reused verbatim, so a
// fixed ProbeJitterSeed reproduces the router's whole recovery history.
// Slow shards and shards answering Retry are NOT failures: slowness is
// degraded throughput and Retry is the shard's own admission control
// talking, and marking either down would turn load into outage.
type shardHealth struct {
	down      bool
	fails     int           // consecutive failed probes since going down
	nextProbe time.Time     // earliest next probe while down
	lastErr   error         // the typed failure that took the shard down
	retryHint time.Duration // last Retry-after hint this shard itself sent
}

// healthConfig parameterizes the prober; zero values select defaults.
type healthConfig struct {
	probeBase   time.Duration // first-retry probe delay (default 100ms)
	probeMax    time.Duration // probe backoff cap (default 2s)
	probeJitter int64         // jitter seed (default 1)
	dialTimeout time.Duration // probe dial budget (default 1s)
	logf        func(format string, args ...any)
}

func (c *healthConfig) withDefaults() healthConfig {
	out := *c
	if out.probeBase <= 0 {
		out.probeBase = 100 * time.Millisecond
	}
	if out.probeMax <= 0 {
		out.probeMax = 2 * time.Second
	}
	if out.probeJitter == 0 {
		out.probeJitter = 1
	}
	if out.dialTimeout <= 0 {
		out.dialTimeout = time.Second
	}
	if out.logf == nil {
		out.logf = func(string, ...any) {}
	}
	return out
}

// health tracks every shard's state and runs the probe loop.
type health struct {
	cfg    healthConfig
	probe  func(addr string) error // dial-and-close by default; test hook
	stopCh chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	rng    *rand.Rand // jitter source, guarded by mu
	shards map[string]*shardHealth
}

func newHealth(addrs []string, cfg healthConfig) *health {
	c := cfg.withDefaults()
	h := &health{
		cfg:    c,
		stopCh: make(chan struct{}),
		rng:    rand.New(rand.NewSource(c.probeJitter)),
		shards: make(map[string]*shardHealth, len(addrs)),
	}
	for _, a := range addrs {
		h.shards[a] = &shardHealth{}
	}
	h.probe = func(addr string) error {
		conn, err := net.DialTimeout("tcp", addr, c.dialTimeout)
		if err != nil {
			return err
		}
		conn.Close()
		return nil
	}
	return h
}

// start launches the probe loop; stop terminates it and waits.
func (h *health) start() {
	h.wg.Add(1)
	go h.probeLoop()
}

func (h *health) stop() {
	close(h.stopCh)
	h.wg.Wait()
}

// addShard starts tracking a new shard, born Up (the router has no
// evidence against it yet; the first typed failure will mark it Down as
// usual). Adding an already-tracked shard is a no-op so a replayed admin
// command cannot reset real health state.
func (h *health) addShard(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.shards[addr]; !ok {
		h.shards[addr] = &shardHealth{}
	}
}

// removeShard stops tracking a shard that left the ring; its probe
// schedule and hints die with it.
func (h *health) removeShard(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.shards, addr)
}

// up reports whether the shard is currently routable.
func (h *health) up(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.shards[addr]
	return st != nil && !st.down
}

// markFailure records a typed routing failure against the shard,
// transitioning Up→Down. Failures against an already-Down shard are the
// probe loop's business, not the router's, and are ignored here.
func (h *health) markFailure(addr string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.shards[addr]
	if st == nil || st.down {
		return
	}
	st.down = true
	st.fails = 1
	st.lastErr = err
	st.nextProbe = time.Now().Add(backoffDelay(h.cfg.probeBase, h.cfg.probeMax, h.rng, 1))
	h.cfg.logf("shard %s: marked down: %v", addr, err)
}

// noteRetryHint remembers the shard's own most recent Retry-after hint,
// observed while relaying its admission responses. The router propagates
// it when it must refuse on the shard's behalf (see Router.refuse).
func (h *health) noteRetryHint(addr string, d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st := h.shards[addr]; st != nil && d > 0 {
		st.retryHint = d
	}
}

// retryHint returns the shard's last self-reported Retry-after, or 0.
func (h *health) retryHint(addr string) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st := h.shards[addr]; st != nil {
		return st.retryHint
	}
	return 0
}

// downShards returns the addresses currently marked down (for logs/tests).
func (h *health) downShards() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for a, st := range h.shards {
		if st.down {
			out = append(out, a)
		}
	}
	return out
}

// probeLoop re-checks Down shards on their backoff schedule until stop.
func (h *health) probeLoop() {
	defer h.wg.Done()
	tick := time.NewTicker(h.cfg.probeBase / 4)
	defer tick.Stop()
	for {
		select {
		case <-h.stopCh:
			return
		case <-tick.C:
		}
		for _, addr := range h.dueProbes() {
			err := h.probe(addr)
			h.mu.Lock()
			st := h.shards[addr]
			if st == nil || !st.down {
				h.mu.Unlock()
				continue
			}
			if err == nil {
				st.down = false
				st.fails = 0
				st.lastErr = nil
				h.cfg.logf("shard %s: back up", addr)
			} else {
				st.fails++
				st.lastErr = err
				st.nextProbe = time.Now().Add(backoffDelay(h.cfg.probeBase, h.cfg.probeMax, h.rng, st.fails))
			}
			h.mu.Unlock()
		}
	}
}

// dueProbes lists Down shards whose backoff has elapsed.
func (h *health) dueProbes() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	var out []string
	for a, st := range h.shards {
		if st.down && !now.Before(st.nextProbe) {
			out = append(out, a)
		}
	}
	return out
}
