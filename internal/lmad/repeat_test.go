package lmad

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func feedRep(c *RepeatCompressor, pts [][]int64) {
	for _, p := range pts {
		c.Add(p)
	}
}

func sweep(base, stride, count int) [][]int64 {
	out := make([][]int64, count)
	for i := range out {
		out[i] = []int64{int64(base + i*stride)}
	}
	return out
}

func TestRepeatedSweepIsOneDescriptor(t *testing.T) {
	// A loop re-scanning the same object: 0,8,…,504 repeated 100 times
	// must be a single descriptor with Reps = 100.
	c := NewRepeatCompressor(1, 0)
	for rep := 0; rep < 100; rep++ {
		feedRep(c, sweep(0, 8, 64))
	}
	ls := c.LMADs()
	if len(ls) != 1 {
		t.Fatalf("got %d descriptors: %v", len(ls), ls)
	}
	if ls[0].Count != 64 || ls[0].Stride[0] != 8 || ls[0].Reps != 100 {
		t.Errorf("descriptor = %v", &ls[0])
	}
	if c.Captured() != 6400 || c.Overflowed() {
		t.Errorf("captured %d, overflowed %v", c.Captured(), c.Overflowed())
	}
	if ls[0].Points() != 6400 {
		t.Errorf("Points = %d", ls[0].Points())
	}
}

func TestPartialRewalk(t *testing.T) {
	c := NewRepeatCompressor(1, 0)
	feedRep(c, sweep(0, 8, 10)) // establish pattern
	feedRep(c, sweep(0, 8, 10)) // one full repetition
	feedRep(c, sweep(0, 8, 4))  // partial re-walk...
	c.Add([]int64{999})         // ...broken here
	if c.Partials() != 1 {
		t.Errorf("Partials = %d", c.Partials())
	}
	// All points were captured: 24 pattern points + 1 new descriptor.
	if c.Captured() != 25 {
		t.Errorf("Captured = %d", c.Captured())
	}
	ls := c.LMADs()
	if len(ls) != 2 {
		t.Fatalf("descriptors = %v", ls)
	}
	if ls[0].Reps != 2 {
		t.Errorf("Reps = %d, want 2 (partial does not count)", ls[0].Reps)
	}
}

func TestRepeatBudgetStillMatchesAfterOverflow(t *testing.T) {
	// Budget 2: two patterns fit; a third is discarded; but re-walks of
	// the first two keep being captured after overflow.
	c := NewRepeatCompressor(1, 2)
	feedRep(c, sweep(0, 8, 8))     // descriptor 1
	feedRep(c, sweep(1000, 4, 8))  // descriptor 2
	feedRep(c, sweep(5000, 16, 8)) // discarded (budget)
	feedRep(c, sweep(0, 8, 8))     // re-walk of 1: captured
	feedRep(c, sweep(1000, 4, 8))  // re-walk of 2: captured
	feedRep(c, sweep(7000, 32, 8)) // discarded

	if !c.Overflowed() {
		t.Fatal("expected overflow")
	}
	if c.Captured() != 32 {
		t.Errorf("Captured = %d, want 32", c.Captured())
	}
	if c.Summary().Points != 16 {
		t.Errorf("summarized = %d, want 16", c.Summary().Points)
	}
	if got := c.SampleQuality(); got != 32.0/48 {
		t.Errorf("SampleQuality = %v", got)
	}
}

func TestRepeatSinglePointDescriptor(t *testing.T) {
	// A constant location accessed repeatedly: 1 descriptor, count 1,
	// reps = number of accesses.
	c := NewRepeatCompressor(2, 0)
	for i := 0; i < 50; i++ {
		c.Add([]int64{3, 40})
	}
	ls := c.LMADs()
	if len(ls) != 1 {
		t.Fatalf("descriptors = %v", ls)
	}
	if pts := ls[0].Points(); pts != 50 {
		t.Errorf("descriptor covers %d points (%v), want 50", pts, &ls[0])
	}
	if c.Captured() != 50 {
		t.Errorf("Captured = %d", c.Captured())
	}
}

func TestRepeatMixedRandom(t *testing.T) {
	// Interleave a repeated sweep with random noise: the sweep must stay
	// captured; quality must be strictly between the sweep share and 1.
	rng := rand.New(rand.NewSource(1))
	c := NewRepeatCompressor(1, 10)
	total := 0
	for rep := 0; rep < 20; rep++ {
		feedRep(c, sweep(0, 8, 32))
		total += 32
		for j := 0; j < 32; j++ {
			c.Add([]int64{int64(10000 + rng.Intn(100000))})
			total++
		}
	}
	if c.Offered() != uint64(total) {
		t.Fatalf("Offered = %d", c.Offered())
	}
	q := c.SampleQuality()
	if q < 0.5 || q > 0.95 {
		t.Errorf("SampleQuality = %v, want ~0.5-0.95 (sweep captured, noise mostly not)", q)
	}
}

func TestRepeatDimsGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 5 dims")
		}
	}()
	NewRepeatCompressor(5, 0)
}

func TestRepeatDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dim mismatch")
		}
	}()
	c := NewRepeatCompressor(2, 0)
	c.Add([]int64{1})
}

func TestRepLMADString(t *testing.T) {
	r := RepLMAD{LMAD: LMAD{Start: []int64{0}, Stride: []int64{8}, Count: 4}, Reps: 3}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestQuickRepeatAccounting(t *testing.T) {
	// Property: captured + summarized == offered, and the descriptors'
	// total points never exceed the captured count (partial re-walks are
	// captured but not represented as full repetitions).
	f := func(raw []int8, maxSmall uint8) bool {
		max := int(maxSmall%8) + 1
		c := NewRepeatCompressor(1, max)
		for _, v := range raw {
			c.Add([]int64{int64(v % 16)})
		}
		if c.Captured()+c.Summary().Points != c.Offered() {
			return false
		}
		var pts uint64
		for _, l := range c.LMADs() {
			if l.Reps == 0 || l.Count == 0 {
				return false
			}
			pts += l.Points()
		}
		return pts <= c.Captured()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
