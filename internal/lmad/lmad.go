// Package lmad implements Linear Memory Access Descriptors and the
// incremental linear compressor LEAP uses (§4.1).
//
// An LMAD, after Paek and Hoeflinger's model, is the triple
// [start, stride, count] where start and stride are n-vectors: it describes
// the count points  start, start+stride, …, start+(count-1)·stride.
// For LEAP the points are (object, offset, time) triples, so n = 3.
//
// The compressor reads the point stream and extends the newest LMAD while
// each point continues its linear pattern, starting a new LMAD otherwise.
// Only a finite number of LMADs is allowed per stream (the paper uses 30 per
// (instruction, group) pair); once exhausted, further points are discarded
// and only summary information (min, max, granularity) is recorded. The
// fraction of points that made it into LMADs is the stream's sample quality.
package lmad

import (
	"fmt"
	"strings"
)

// DefaultMax is the paper's LMAD cap per compressed stream (§4.1: "we chose
// a maximum of 30 LMADs for a given (instruction-id, group) pair").
const DefaultMax = 30

// LMAD is one linear descriptor over n-dimensional integer points.
type LMAD struct {
	Start  []int64
	Stride []int64 // zero vector while Count == 1
	Count  uint32
}

// Dims reports the dimensionality.
func (l *LMAD) Dims() int { return len(l.Start) }

// Point returns the i-th described point (0 ≤ i < Count).
func (l *LMAD) Point(i uint32) []int64 {
	p := make([]int64, len(l.Start))
	for d := range p {
		p[d] = l.Start[d] + l.Stride[d]*int64(i)
	}
	return p
}

// Last returns the final described point.
func (l *LMAD) Last() []int64 { return l.Point(l.Count - 1) }

// At returns coordinate d of the i-th point without allocating.
func (l *LMAD) At(i uint32, d int) int64 {
	return l.Start[d] + l.Stride[d]*int64(i)
}

// String renders the descriptor as [start, stride, count].
func (l *LMAD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%v, %v, %d]", l.Start, l.Stride, l.Count)
	return b.String()
}

// next reports whether p is the next point of the descriptor's pattern.
func (l *LMAD) next(p []int64) bool {
	for d := range p {
		if p[d] != l.Start[d]+l.Stride[d]*int64(l.Count) {
			return false
		}
	}
	return true
}

// Summary is the degraded record kept once the LMAD budget is exhausted:
// per-dimension min, max, and granularity (GCD of all point-to-point deltas
// seen), as described in §4.1.
type Summary struct {
	Min, Max    []int64
	Granularity []int64 // 0 until two distinct values have been seen
	Points      uint64  // points summarized (not captured in LMADs)
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (s *Summary) add(p []int64, prev []int64) {
	if s.Min == nil {
		s.Min = append([]int64(nil), p...)
		s.Max = append([]int64(nil), p...)
		s.Granularity = make([]int64, len(p))
	}
	for d, v := range p {
		if v < s.Min[d] {
			s.Min[d] = v
		}
		if v > s.Max[d] {
			s.Max[d] = v
		}
		if prev != nil {
			s.Granularity[d] = gcd64(s.Granularity[d], v-prev[d])
		}
	}
	s.Points++
}

// Compressor incrementally builds the LMAD representation of one point
// stream.
type Compressor struct {
	dims int
	max  int

	lmads    []LMAD
	active   int // index of the LMAD being extended, -1 initially
	overflow bool
	summary  Summary
	lastSeen []int64 // previous point, for granularity tracking

	offered  uint64 // total points
	captured uint64 // points represented exactly in LMADs
}

// NewCompressor creates a compressor for dims-dimensional points with the
// given LMAD cap; cap ≤ 0 selects DefaultMax.
func NewCompressor(dims, max int) *Compressor {
	if dims <= 0 {
		panic("lmad: dims must be positive")
	}
	if max <= 0 {
		max = DefaultMax
	}
	return &Compressor{dims: dims, max: max, active: -1}
}

// Add feeds the next point of the stream. The slice is copied as needed; the
// caller may reuse it.
func (c *Compressor) Add(p []int64) {
	if len(p) != c.dims {
		panic(fmt.Sprintf("lmad: point has %d dims, compressor expects %d", len(p), c.dims))
	}
	c.offered++
	if c.overflow {
		c.summary.add(p, c.lastSeen)
		c.lastSeen = append(c.lastSeen[:0], p...)
		return
	}
	if c.active >= 0 {
		l := &c.lmads[c.active]
		if l.Count == 1 {
			// Adopt the stride implied by the second point.
			for d := range p {
				l.Stride[d] = p[d] - l.Start[d]
			}
			l.Count = 2
			c.captured++
			c.lastSeen = append(c.lastSeen[:0], p...)
			return
		}
		if l.next(p) {
			l.Count++
			c.captured++
			c.lastSeen = append(c.lastSeen[:0], p...)
			return
		}
	}
	// The point breaks the active pattern: start a new LMAD, if the budget
	// allows.
	if len(c.lmads) == c.max {
		c.overflow = true
		c.summary.add(p, c.lastSeen)
		c.lastSeen = append(c.lastSeen[:0], p...)
		return
	}
	c.lmads = append(c.lmads, LMAD{
		Start:  append([]int64(nil), p...),
		Stride: make([]int64, c.dims),
		Count:  1,
	})
	c.active = len(c.lmads) - 1
	c.captured++
	c.lastSeen = append(c.lastSeen[:0], p...)
}

// LMADs returns the built descriptors in stream order. The returned slice
// aliases the compressor's state; callers must not modify it.
func (c *Compressor) LMADs() []LMAD { return c.lmads }

// Overflowed reports whether the LMAD budget was exhausted.
func (c *Compressor) Overflowed() bool { return c.overflow }

// Summary returns the degraded summary of discarded points (zero-valued if
// no overflow occurred).
func (c *Compressor) Summary() Summary { return c.summary }

// Offered reports the total number of points fed to the compressor.
func (c *Compressor) Offered() uint64 { return c.offered }

// Captured reports how many points are represented exactly in LMADs.
func (c *Compressor) Captured() uint64 { return c.captured }

// SampleQuality reports Captured/Offered, the §4.1 sample-quality measure
// (1.0 for a fully linear stream, near 0 for a predominantly non-linear
// one). It is 1.0 for an empty stream.
func (c *Compressor) SampleQuality() float64 {
	if c.offered == 0 {
		return 1.0
	}
	return float64(c.captured) / float64(c.offered)
}

// Expand regenerates the captured prefix of the point stream (the
// concatenated expansions of all LMADs, in order). Together with Add it
// witnesses that LMAD compression is exact on whatever it captures.
func (c *Compressor) Expand() [][]int64 {
	out := make([][]int64, 0, c.captured)
	for i := range c.lmads {
		l := &c.lmads[i]
		for j := uint32(0); j < l.Count; j++ {
			out = append(out, l.Point(j))
		}
	}
	return out
}
