package lmad_test

import (
	"fmt"

	"ormprof/internal/lmad"
)

// The paper's §4.1 example: the offset stream 0,4,8,12,16,20,44,48,52,56 is
// described by two LMADs, [0, 4, 6] and [44, 4, 4].
func ExampleCompressor() {
	c := lmad.NewCompressor(1, 0)
	for _, off := range []int64{0, 4, 8, 12, 16, 20, 44, 48, 52, 56} {
		c.Add([]int64{off})
	}
	for _, l := range c.LMADs() {
		fmt.Println(l.String())
	}
	fmt.Printf("sample quality: %.0f%%\n", 100*c.SampleQuality())
	// Output:
	// [[0], [4], 6]
	// [[44], [4], 4]
	// sample quality: 100%
}

// A loop re-scanning the same object repeats its pattern; the repeat-aware
// compressor folds all sweeps into one descriptor.
func ExampleRepeatCompressor() {
	c := lmad.NewRepeatCompressor(1, 0)
	for sweep := 0; sweep < 100; sweep++ {
		for off := int64(0); off < 64; off += 8 {
			c.Add([]int64{off})
		}
	}
	ls := c.LMADs()
	fmt.Println("descriptors:", len(ls))
	fmt.Println(ls[0].String())
	// Output:
	// descriptors: 1
	// [[0], [8], 8]×100
}
