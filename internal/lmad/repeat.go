package lmad

import "fmt"

// RepLMAD is a two-level linear descriptor: the inner [Start, Stride, Count]
// pattern repeated Reps times. It is the nested form of the Paek/Hoeflinger
// LMAD model specialized to re-walked patterns — a loop that sweeps the same
// object repeatedly (offsets 0, 8, …, 504, 0, 8, …) is one RepLMAD instead
// of one LMAD per sweep, which is what keeps repeated traversals inside the
// paper's 30-descriptor budget.
type RepLMAD struct {
	LMAD
	Reps uint32 // complete repetitions of the inner pattern (≥ 1)
}

// Points reports the total points the descriptor stands for.
func (r *RepLMAD) Points() uint64 { return uint64(r.Count) * uint64(r.Reps) }

// String renders the descriptor as [start, stride, count]×reps.
func (r *RepLMAD) String() string {
	return fmt.Sprintf("%s×%d", r.LMAD.String(), r.Reps)
}

// startKey is the map key for a descriptor's start point (up to 4 dims).
type startKey [4]int64

func keyOf(p []int64) startKey {
	var k startKey
	copy(k[:], p)
	return k
}

// RepeatCompressor incrementally builds a repeat-aware LMAD representation
// of one point stream. Unlike Compressor, its output is a multiset of
// descriptors with repetition counts, not an order-exact encoding: a point
// that restarts a known descriptor re-walks it instead of consuming budget.
// Partial re-walks that break off mid-pattern are counted (Partials) but
// not separately represented.
type RepeatCompressor struct {
	dims int
	max  int

	lmads  []RepLMAD
	starts map[startKey]int // start point -> descriptor index
	active int              // descriptor being extended (-1 none)

	follow      int    // descriptor being re-walked (-1 none)
	followPhase uint32 // next expected point index in the followed pattern

	overflow bool
	summary  Summary
	lastSeen []int64

	offered  uint64
	captured uint64
	partials uint64 // re-walks that broke off before completing
}

// NewRepeatCompressor creates a repeat-aware compressor for dims-dimensional
// points (dims ≤ 4) with the given descriptor budget (≤ 0 = DefaultMax).
func NewRepeatCompressor(dims, max int) *RepeatCompressor {
	if dims <= 0 || dims > 4 {
		panic("lmad: RepeatCompressor supports 1..4 dims")
	}
	if max <= 0 {
		max = DefaultMax
	}
	return &RepeatCompressor{
		dims:   dims,
		max:    max,
		starts: make(map[startKey]int),
		active: -1,
		follow: -1,
	}
}

// Add feeds the next point of the stream.
//
// Exhausting the descriptor budget stops the *creation* of descriptors, not
// the matching: a point that extends or re-walks an established pattern is
// still captured after overflow (matching costs no memory), and only
// pattern-breaking points degrade to the min/max/granularity summary.
func (c *RepeatCompressor) Add(p []int64) {
	if len(p) != c.dims {
		panic(fmt.Sprintf("lmad: point has %d dims, compressor expects %d", len(p), c.dims))
	}
	c.offered++
	defer func() { c.lastSeen = append(c.lastSeen[:0], p...) }()

	// Re-walking a known descriptor?
	if c.follow >= 0 {
		l := &c.lmads[c.follow]
		if pointEqual(l, c.followPhase, p) {
			c.captured++
			c.followPhase++
			if c.followPhase == l.Count {
				l.Reps++
				c.follow = -1
			}
			return
		}
		// Broke off mid-pattern.
		c.partials++
		c.follow = -1
		// Fall through: p is treated as a fresh point.
	}

	// Extend the active descriptor?
	if c.active >= 0 {
		l := &c.lmads[c.active]
		if l.Reps == 1 {
			if l.Count == 1 {
				for d := range p {
					l.Stride[d] = p[d] - l.Start[d]
				}
				l.Count = 2
				c.captured++
				return
			}
			if l.next(p) {
				l.Count++
				c.captured++
				return
			}
		}
		c.active = -1
	}

	// Restart of a known descriptor?
	if idx, ok := c.starts[keyOf(p)]; ok {
		l := &c.lmads[idx]
		c.captured++
		if l.Count == 1 {
			l.Reps++
			return
		}
		c.follow = idx
		c.followPhase = 1
		return
	}

	// A genuinely new pattern: discard it if the budget is exhausted.
	if len(c.lmads) == c.max {
		c.overflow = true
		c.summary.add(p, c.lastSeen)
		return
	}
	c.lmads = append(c.lmads, RepLMAD{
		LMAD: LMAD{
			Start:  append([]int64(nil), p...),
			Stride: make([]int64, c.dims),
			Count:  1,
		},
		Reps: 1,
	})
	c.active = len(c.lmads) - 1
	c.starts[keyOf(p)] = c.active
	c.captured++
}

func pointEqual(l *RepLMAD, i uint32, p []int64) bool {
	for d := range p {
		if p[d] != l.Start[d]+l.Stride[d]*int64(i) {
			return false
		}
	}
	return true
}

// LMADs returns the descriptors. The slice aliases compressor state.
func (c *RepeatCompressor) LMADs() []RepLMAD { return c.lmads }

// Overflowed reports whether the descriptor budget was exhausted.
func (c *RepeatCompressor) Overflowed() bool { return c.overflow }

// Summary returns the degraded summary of discarded points.
func (c *RepeatCompressor) Summary() Summary { return c.summary }

// Offered reports total points fed in.
func (c *RepeatCompressor) Offered() uint64 { return c.offered }

// Captured reports points matched by descriptors (including partial
// re-walks).
func (c *RepeatCompressor) Captured() uint64 { return c.captured }

// Partials reports how many re-walks broke off before completing a full
// repetition.
func (c *RepeatCompressor) Partials() uint64 { return c.partials }

// SampleQuality reports Captured/Offered (1.0 for an empty stream).
func (c *RepeatCompressor) SampleQuality() float64 {
	if c.offered == 0 {
		return 1.0
	}
	return float64(c.captured) / float64(c.offered)
}
