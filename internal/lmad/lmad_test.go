package lmad

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func points1D(vals ...int64) [][]int64 {
	out := make([][]int64, len(vals))
	for i, v := range vals {
		out[i] = []int64{v}
	}
	return out
}

func feed(c *Compressor, pts [][]int64) {
	for _, p := range pts {
		c.Add(p)
	}
}

func TestPaperOffsetExample(t *testing.T) {
	// The paper's §4.1 example: the offset stream
	// 0, 4, 8, 12, 16, 20, 44, 48, 52, 56
	// is described by two LMADs: [0, 4, 6] and [44, 4, 4].
	c := NewCompressor(1, 0)
	feed(c, points1D(0, 4, 8, 12, 16, 20, 44, 48, 52, 56))
	ls := c.LMADs()
	if len(ls) != 2 {
		t.Fatalf("got %d LMADs, want 2: %v", len(ls), ls)
	}
	want0 := LMAD{Start: []int64{0}, Stride: []int64{4}, Count: 6}
	want1 := LMAD{Start: []int64{44}, Stride: []int64{4}, Count: 4}
	if !reflect.DeepEqual(ls[0], want0) {
		t.Errorf("LMAD 0 = %v, want %v", &ls[0], &want0)
	}
	if !reflect.DeepEqual(ls[1], want1) {
		t.Errorf("LMAD 1 = %v, want %v", &ls[1], &want1)
	}
	if c.SampleQuality() != 1.0 {
		t.Errorf("sample quality = %v, want 1.0", c.SampleQuality())
	}
}

func TestSinglePoint(t *testing.T) {
	c := NewCompressor(3, 0)
	c.Add([]int64{5, -2, 100})
	ls := c.LMADs()
	if len(ls) != 1 || ls[0].Count != 1 {
		t.Fatalf("got %v", ls)
	}
	if got := ls[0].Last(); !reflect.DeepEqual(got, []int64{5, -2, 100}) {
		t.Errorf("Last = %v", got)
	}
}

func TestStrideAdoption(t *testing.T) {
	// The second point fixes the stride; a third matching point extends,
	// a mismatching one starts a new LMAD.
	c := NewCompressor(2, 0)
	feed(c, [][]int64{{0, 0}, {1, 8}, {2, 16}, {3, 24}, {0, 0}})
	ls := c.LMADs()
	if len(ls) != 2 {
		t.Fatalf("got %d LMADs: %v", len(ls), ls)
	}
	if ls[0].Count != 4 || ls[0].Stride[0] != 1 || ls[0].Stride[1] != 8 {
		t.Errorf("LMAD 0 = %v", &ls[0])
	}
}

func TestNegativeStride(t *testing.T) {
	c := NewCompressor(1, 0)
	feed(c, points1D(100, 90, 80, 70))
	ls := c.LMADs()
	if len(ls) != 1 || ls[0].Stride[0] != -10 || ls[0].Count != 4 {
		t.Fatalf("got %v", ls)
	}
}

func TestOverflowAndSummary(t *testing.T) {
	// Random points exhaust a tiny budget; the summary must cover the
	// discarded tail.
	c := NewCompressor(1, 3)
	rng := rand.New(rand.NewSource(1))
	var pts [][]int64
	for i := 0; i < 100; i++ {
		pts = append(pts, []int64{int64(rng.Intn(1000)) * 3}) // granularity 3
	}
	feed(c, pts)
	if !c.Overflowed() {
		t.Fatal("expected overflow")
	}
	if c.Offered() != 100 {
		t.Errorf("Offered = %d", c.Offered())
	}
	if c.Captured() >= c.Offered() {
		t.Errorf("Captured = %d should be < Offered = %d", c.Captured(), c.Offered())
	}
	s := c.Summary()
	if s.Points == 0 {
		t.Fatal("summary recorded no points")
	}
	if s.Points+c.Captured() != c.Offered() {
		t.Errorf("captured(%d) + summarized(%d) != offered(%d)", c.Captured(), s.Points, c.Offered())
	}
	if s.Granularity[0]%3 != 0 || s.Granularity[0] == 0 {
		t.Errorf("granularity = %d, want a non-zero multiple of 3", s.Granularity[0])
	}
	if s.Min[0] < 0 || s.Max[0] > 3000 || s.Min[0] > s.Max[0] {
		t.Errorf("summary range [%d, %d] out of bounds", s.Min[0], s.Max[0])
	}
}

func TestExpandRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		dims := 1 + rng.Intn(3)
		c := NewCompressor(dims, 1000) // large budget: no overflow
		var pts [][]int64
		// Generate a mix of linear runs and jumps.
		cur := make([]int64, dims)
		for seg := 0; seg < 8; seg++ {
			stride := make([]int64, dims)
			for d := range stride {
				stride[d] = int64(rng.Intn(9) - 4)
			}
			runLen := 1 + rng.Intn(10)
			for i := 0; i < runLen; i++ {
				p := append([]int64(nil), cur...)
				pts = append(pts, p)
				for d := range cur {
					cur[d] += stride[d]
				}
			}
			for d := range cur {
				cur[d] += int64(rng.Intn(100) + 50)
			}
		}
		feed(c, pts)
		if c.Overflowed() {
			t.Fatalf("unexpected overflow with budget 1000")
		}
		got := c.Expand()
		if !reflect.DeepEqual(got, pts) {
			t.Fatalf("round trip failed (dims=%d):\n got %v\nwant %v", dims, got, pts)
		}
	}
}

func TestQuickCapturedPrefixExact(t *testing.T) {
	// Property: whatever the input, Expand() reproduces exactly the points
	// that were captured (the stream with the summarized tail removed), and
	// captured + summarized == offered.
	f := func(raw []int8, maxSmall uint8) bool {
		max := int(maxSmall%10) + 1
		c := NewCompressor(1, max)
		var pts [][]int64
		for _, v := range raw {
			pts = append(pts, []int64{int64(v)})
		}
		feed(c, pts)
		if c.Captured()+c.Summary().Points != c.Offered() {
			return false
		}
		exp := c.Expand()
		if uint64(len(exp)) != c.Captured() {
			return false
		}
		// Captured points are a prefix-with-gaps? No: capture stops at
		// first overflow, so expansion equals the prefix of the input of
		// length Captured().
		for i, p := range exp {
			if p[0] != pts[i][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPointAt(t *testing.T) {
	l := LMAD{Start: []int64{10, 0}, Stride: []int64{-2, 8}, Count: 5}
	if got := l.Point(3); !reflect.DeepEqual(got, []int64{4, 24}) {
		t.Errorf("Point(3) = %v", got)
	}
	if got := l.At(4, 1); got != 32 {
		t.Errorf("At(4,1) = %d", got)
	}
	if l.Dims() != 2 {
		t.Errorf("Dims = %d", l.Dims())
	}
	if l.String() == "" {
		t.Error("String is empty")
	}
}

func TestDefaultMax(t *testing.T) {
	c := NewCompressor(1, 0)
	if c.max != DefaultMax {
		t.Errorf("default cap = %d, want %d", c.max, DefaultMax)
	}
	// Exactly DefaultMax alternating patterns fit without overflow.
	for i := 0; i < DefaultMax; i++ {
		c.Add([]int64{int64(i * 1000)})
		c.Add([]int64{int64(i*1000) + 1})
		c.Add([]int64{int64(i*1000) + 3}) // break: next pair starts new LMAD
	}
	// 30 LMADs of the form (x, x+1, x+3 breaks)... ensure we did overflow
	// only after the budget.
	if len(c.LMADs()) > DefaultMax {
		t.Errorf("LMAD count %d exceeds cap", len(c.LMADs()))
	}
}

func TestAddPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	c := NewCompressor(2, 0)
	c.Add([]int64{1})
}

func TestEmptyStreamQuality(t *testing.T) {
	c := NewCompressor(1, 0)
	if q := c.SampleQuality(); q != 1.0 {
		t.Errorf("empty stream quality = %v, want 1.0", q)
	}
}
