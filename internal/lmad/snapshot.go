package lmad

import "fmt"

// This file implements exact compressor snapshots for checkpoint/resume
// (internal/checkpoint): every piece of mutable state both compressors
// carry — including the in-progress pattern cursors and the lastSeen point
// the overflow summary's granularity tracking depends on — captured as
// pure data, with a restore that reproduces the original's behavior for
// all future Adds.

func cloneLMADs(ls []LMAD) []LMAD {
	out := make([]LMAD, len(ls))
	for i, l := range ls {
		out[i] = LMAD{
			Start:  append([]int64(nil), l.Start...),
			Stride: append([]int64(nil), l.Stride...),
			Count:  l.Count,
		}
	}
	return out
}

func cloneSummary(s Summary) Summary {
	return Summary{
		Min:         append([]int64(nil), s.Min...),
		Max:         append([]int64(nil), s.Max...),
		Granularity: append([]int64(nil), s.Granularity...),
		Points:      s.Points,
	}
}

func checkLMADs(dims int, ls []LMAD) error {
	for i := range ls {
		if len(ls[i].Start) != dims || len(ls[i].Stride) != dims {
			return fmt.Errorf("lmad: descriptor %d has %d/%d dims, want %d",
				i, len(ls[i].Start), len(ls[i].Stride), dims)
		}
		if ls[i].Count == 0 {
			return fmt.Errorf("lmad: descriptor %d has zero count", i)
		}
	}
	return nil
}

func checkSummary(dims int, s Summary) error {
	if s.Min == nil && s.Max == nil && s.Granularity == nil {
		return nil
	}
	if len(s.Min) != dims || len(s.Max) != dims || len(s.Granularity) != dims {
		return fmt.Errorf("lmad: summary has %d/%d/%d dims, want %d",
			len(s.Min), len(s.Max), len(s.Granularity), dims)
	}
	return nil
}

// CompressorSnapshot is the complete mutable state of a Compressor.
type CompressorSnapshot struct {
	Dims, Max int
	LMADs     []LMAD
	Active    int // descriptor being extended, -1 none
	Overflow  bool
	Summary   Summary
	LastSeen  []int64 // previous point (nil before the first Add)
	Offered   uint64
	Captured  uint64
}

// Snapshot captures the compressor's state; the result shares no memory
// with the live compressor.
func (c *Compressor) Snapshot() *CompressorSnapshot {
	return &CompressorSnapshot{
		Dims:     c.dims,
		Max:      c.max,
		LMADs:    cloneLMADs(c.lmads),
		Active:   c.active,
		Overflow: c.overflow,
		Summary:  cloneSummary(c.summary),
		LastSeen: append([]int64(nil), c.lastSeen...),
		Offered:  c.offered,
		Captured: c.captured,
	}
}

// CompressorFromSnapshot reconstructs a compressor that behaves identically
// to the snapshotted one for all future Adds.
func CompressorFromSnapshot(s *CompressorSnapshot) (*Compressor, error) {
	if s.Dims <= 0 {
		return nil, fmt.Errorf("lmad: snapshot dims %d not positive", s.Dims)
	}
	if s.Max <= 0 {
		return nil, fmt.Errorf("lmad: snapshot max %d not positive", s.Max)
	}
	if len(s.LMADs) > s.Max {
		return nil, fmt.Errorf("lmad: snapshot has %d descriptors over budget %d", len(s.LMADs), s.Max)
	}
	if s.Active < -1 || s.Active >= len(s.LMADs) {
		return nil, fmt.Errorf("lmad: snapshot active index %d out of range", s.Active)
	}
	if err := checkLMADs(s.Dims, s.LMADs); err != nil {
		return nil, err
	}
	if err := checkSummary(s.Dims, s.Summary); err != nil {
		return nil, err
	}
	if s.LastSeen != nil && len(s.LastSeen) != s.Dims {
		return nil, fmt.Errorf("lmad: snapshot lastSeen has %d dims, want %d", len(s.LastSeen), s.Dims)
	}
	return &Compressor{
		dims:     s.Dims,
		max:      s.Max,
		lmads:    cloneLMADs(s.LMADs),
		active:   s.Active,
		overflow: s.Overflow,
		summary:  cloneSummary(s.Summary),
		lastSeen: append([]int64(nil), s.LastSeen...),
		offered:  s.Offered,
		captured: s.Captured,
	}, nil
}

// RepeatSnapshot is the complete mutable state of a RepeatCompressor. The
// start-point index is not stored: it is derivable (each descriptor is
// indexed under its start point) and rebuilt on restore.
type RepeatSnapshot struct {
	Dims, Max   int
	LMADs       []RepLMAD
	Active      int
	Follow      int
	FollowPhase uint32
	Overflow    bool
	Summary     Summary
	LastSeen    []int64
	Offered     uint64
	Captured    uint64
	Partials    uint64
}

func cloneRepLMADs(ls []RepLMAD) []RepLMAD {
	out := make([]RepLMAD, len(ls))
	for i, l := range ls {
		out[i] = RepLMAD{
			LMAD: LMAD{
				Start:  append([]int64(nil), l.Start...),
				Stride: append([]int64(nil), l.Stride...),
				Count:  l.Count,
			},
			Reps: l.Reps,
		}
	}
	return out
}

// Snapshot captures the compressor's state; the result shares no memory
// with the live compressor.
func (c *RepeatCompressor) Snapshot() *RepeatSnapshot {
	return &RepeatSnapshot{
		Dims:        c.dims,
		Max:         c.max,
		LMADs:       cloneRepLMADs(c.lmads),
		Active:      c.active,
		Follow:      c.follow,
		FollowPhase: c.followPhase,
		Overflow:    c.overflow,
		Summary:     cloneSummary(c.summary),
		LastSeen:    append([]int64(nil), c.lastSeen...),
		Offered:     c.offered,
		Captured:    c.captured,
		Partials:    c.partials,
	}
}

// RepeatFromSnapshot reconstructs a repeat-aware compressor that behaves
// identically to the snapshotted one for all future Adds.
func RepeatFromSnapshot(s *RepeatSnapshot) (*RepeatCompressor, error) {
	if s.Dims <= 0 || s.Dims > 4 {
		return nil, fmt.Errorf("lmad: snapshot dims %d outside 1..4", s.Dims)
	}
	if s.Max <= 0 {
		return nil, fmt.Errorf("lmad: snapshot max %d not positive", s.Max)
	}
	if len(s.LMADs) > s.Max {
		return nil, fmt.Errorf("lmad: snapshot has %d descriptors over budget %d", len(s.LMADs), s.Max)
	}
	if s.Active < -1 || s.Active >= len(s.LMADs) {
		return nil, fmt.Errorf("lmad: snapshot active index %d out of range", s.Active)
	}
	if s.Follow < -1 || s.Follow >= len(s.LMADs) {
		return nil, fmt.Errorf("lmad: snapshot follow index %d out of range", s.Follow)
	}
	if s.Follow >= 0 && s.FollowPhase >= s.LMADs[s.Follow].Count {
		return nil, fmt.Errorf("lmad: snapshot follow phase %d beyond pattern length %d",
			s.FollowPhase, s.LMADs[s.Follow].Count)
	}
	plain := make([]LMAD, len(s.LMADs))
	for i := range s.LMADs {
		plain[i] = s.LMADs[i].LMAD
		if s.LMADs[i].Reps == 0 {
			return nil, fmt.Errorf("lmad: descriptor %d has zero reps", i)
		}
	}
	if err := checkLMADs(s.Dims, plain); err != nil {
		return nil, err
	}
	if err := checkSummary(s.Dims, s.Summary); err != nil {
		return nil, err
	}
	if s.LastSeen != nil && len(s.LastSeen) != s.Dims {
		return nil, fmt.Errorf("lmad: snapshot lastSeen has %d dims, want %d", len(s.LastSeen), s.Dims)
	}
	c := &RepeatCompressor{
		dims:        s.Dims,
		max:         s.Max,
		lmads:       cloneRepLMADs(s.LMADs),
		starts:      make(map[startKey]int, len(s.LMADs)),
		active:      s.Active,
		follow:      s.Follow,
		followPhase: s.FollowPhase,
		overflow:    s.Overflow,
		summary:     cloneSummary(s.Summary),
		lastSeen:    append([]int64(nil), s.LastSeen...),
		offered:     s.Offered,
		captured:    s.Captured,
		partials:    s.Partials,
	}
	// Each descriptor was indexed under its start point at creation and
	// entries are never deleted, so the index is exactly this.
	for i := range c.lmads {
		k := keyOf(c.lmads[i].Start)
		if j, dup := c.starts[k]; dup {
			return nil, fmt.Errorf("lmad: descriptors %d and %d share a start point", j, i)
		}
		c.starts[k] = i
	}
	return c, nil
}
