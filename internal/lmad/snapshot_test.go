package lmad

import (
	"math/rand"
	"reflect"
	"testing"
)

// snapshotPoints returns point streams exercising every compressor regime:
// pure linear runs (one big LMAD), pattern restarts (repeat matching),
// partial re-walks, random points (budget overflow + summary), and a mix.
func snapshotPoints(dims int) map[string][][]int64 {
	rng := rand.New(rand.NewSource(11))
	pt := func(vals ...int64) []int64 { return vals[:dims] }

	var linear [][]int64
	for i := int64(0); i < 500; i++ {
		linear = append(linear, pt(i*8, i, i*3))
	}

	var sweeps [][]int64
	for rep := 0; rep < 6; rep++ {
		for i := int64(0); i < 64; i++ {
			sweeps = append(sweeps, pt(i*8, 100+i, 7))
		}
	}
	// One partial re-walk that breaks off mid-pattern.
	for i := int64(0); i < 10; i++ {
		sweeps = append(sweeps, pt(i*8, 100+i, 7))
	}
	sweeps = append(sweeps, pt(-1, -1, -1))

	var noise [][]int64
	for i := 0; i < 400; i++ {
		noise = append(noise, pt(rng.Int63n(1000), rng.Int63n(1000), rng.Int63n(1000)))
	}

	mixed := append(append(append([][]int64{}, linear[:100]...), noise[:100]...), sweeps...)
	return map[string][][]int64{
		"linear": linear,
		"sweeps": sweeps,
		"noise":  noise,
		"mixed":  mixed,
	}
}

// TestCompressorSnapshotResumeExact: a compressor restored mid-stream and fed
// the remainder must end in exactly the state of an uninterrupted run.
func TestCompressorSnapshotResumeExact(t *testing.T) {
	for _, dims := range []int{2, 3} {
		for name, pts := range snapshotPoints(dims) {
			cuts := []int{0, 1, 2, 10, len(pts) / 3, len(pts) / 2, len(pts) - 1, len(pts)}
			for _, cut := range cuts {
				full := NewCompressor(dims, 8)
				for _, p := range pts {
					full.Add(p)
				}

				c := NewCompressor(dims, 8)
				for _, p := range pts[:cut] {
					c.Add(p)
				}
				restored, err := CompressorFromSnapshot(c.Snapshot())
				if err != nil {
					t.Fatalf("%s/d%d/%d: %v", name, dims, cut, err)
				}
				for _, p := range pts[cut:] {
					restored.Add(p)
				}

				if !reflect.DeepEqual(restored.Snapshot(), full.Snapshot()) {
					t.Errorf("%s/d%d/cut %d: resumed compressor state differs from uninterrupted run",
						name, dims, cut)
				}
			}
		}
	}
}

// TestRepeatSnapshotResumeExact: same property for the repeat-aware
// compressor, whose follow/phase cursors make resume genuinely stateful.
func TestRepeatSnapshotResumeExact(t *testing.T) {
	for _, dims := range []int{2, 3} {
		for name, pts := range snapshotPoints(dims) {
			cuts := []int{0, 1, 2, 10, len(pts) / 3, len(pts) / 2, len(pts) - 1, len(pts)}
			for _, cut := range cuts {
				full := NewRepeatCompressor(dims, 8)
				for _, p := range pts {
					full.Add(p)
				}

				c := NewRepeatCompressor(dims, 8)
				for _, p := range pts[:cut] {
					c.Add(p)
				}
				restored, err := RepeatFromSnapshot(c.Snapshot())
				if err != nil {
					t.Fatalf("%s/d%d/%d: %v", name, dims, cut, err)
				}
				for _, p := range pts[cut:] {
					restored.Add(p)
				}

				if !reflect.DeepEqual(restored.Snapshot(), full.Snapshot()) {
					t.Errorf("%s/d%d/cut %d: resumed repeat compressor differs from uninterrupted run",
						name, dims, cut)
				}
			}
		}
	}
}

// TestLMADSnapshotIndependent: snapshots must not alias live state.
func TestLMADSnapshotIndependent(t *testing.T) {
	c := NewCompressor(2, 4)
	for i := int64(0); i < 20; i++ {
		c.Add([]int64{i, i * 2})
	}
	s := c.Snapshot()
	before := *s
	beforeLMADs := cloneLMADs(s.LMADs)
	for i := int64(0); i < 50; i++ {
		c.Add([]int64{i * 7, i})
	}
	if s.Offered != before.Offered || !reflect.DeepEqual(s.LMADs, beforeLMADs) {
		t.Error("compressor snapshot aliased live state")
	}

	rc := NewRepeatCompressor(2, 4)
	for rep := 0; rep < 3; rep++ {
		for i := int64(0); i < 8; i++ {
			rc.Add([]int64{i, i})
		}
	}
	rs := rc.Snapshot()
	beforeRep := cloneRepLMADs(rs.LMADs)
	for i := int64(0); i < 8; i++ {
		rc.Add([]int64{i, i})
	}
	if !reflect.DeepEqual(rs.LMADs, beforeRep) {
		t.Error("repeat compressor snapshot aliased live state")
	}
}

// TestLMADFromSnapshotRejectsCorrupt: broken snapshots are errors, not panics.
func TestLMADFromSnapshotRejectsCorrupt(t *testing.T) {
	mk := func() *RepeatSnapshot {
		c := NewRepeatCompressor(2, 4)
		for rep := 0; rep < 3; rep++ {
			for i := int64(0); i < 8; i++ {
				c.Add([]int64{i, i * 3})
			}
		}
		return c.Snapshot()
	}
	cases := map[string]func(*RepeatSnapshot){
		"bad dims":       func(s *RepeatSnapshot) { s.Dims = 0 },
		"bad max":        func(s *RepeatSnapshot) { s.Max = 0 },
		"over budget":    func(s *RepeatSnapshot) { s.Max = len(s.LMADs) - 1 },
		"active oob":     func(s *RepeatSnapshot) { s.Active = 99 },
		"follow oob":     func(s *RepeatSnapshot) { s.Follow = 99 },
		"phase oob":      func(s *RepeatSnapshot) { s.Follow = 0; s.FollowPhase = s.LMADs[0].Count },
		"zero count":     func(s *RepeatSnapshot) { s.LMADs[0].Count = 0 },
		"zero reps":      func(s *RepeatSnapshot) { s.LMADs[0].Reps = 0 },
		"dim mismatch":   func(s *RepeatSnapshot) { s.LMADs[0].Start = s.LMADs[0].Start[:1] },
		"lastSeen dims":  func(s *RepeatSnapshot) { s.LastSeen = []int64{1} },
		"dup start":      func(s *RepeatSnapshot) { s.LMADs = append(s.LMADs, s.LMADs[0]) },
		"summary broken": func(s *RepeatSnapshot) { s.Summary.Min = []int64{1} },
	}
	for name, corrupt := range cases {
		s := mk()
		corrupt(s)
		if _, err := RepeatFromSnapshot(s); err == nil {
			t.Errorf("%s: RepeatFromSnapshot accepted a corrupt snapshot", name)
		}
	}

	plain := func() *CompressorSnapshot {
		c := NewCompressor(2, 4)
		for i := int64(0); i < 30; i++ {
			c.Add([]int64{i, i})
		}
		return c.Snapshot()
	}
	plainCases := map[string]func(*CompressorSnapshot){
		"bad dims":   func(s *CompressorSnapshot) { s.Dims = -1 },
		"active oob": func(s *CompressorSnapshot) { s.Active = 7 },
		"zero count": func(s *CompressorSnapshot) { s.LMADs[0].Count = 0 },
	}
	for name, corrupt := range plainCases {
		s := plain()
		corrupt(s)
		if _, err := CompressorFromSnapshot(s); err == nil {
			t.Errorf("%s: CompressorFromSnapshot accepted a corrupt snapshot", name)
		}
	}
}
