package lmad

// Approximate sizes for budget accounting.
const (
	compressorBase = 160
	startKeyBytes  = 56 // startKey + index + map bucket share
)

// lmadBytes approximates one descriptor of the given dimensionality: the
// struct plus its Start and Stride backing arrays.
func lmadBytes(dims int) int64 { return 64 + int64(16*dims) }

// Footprint reports the compressor's approximate live bytes in O(1): the
// state is the descriptor list plus fixed-size summary/last-point slices.
func (c *Compressor) Footprint() int64 {
	return compressorBase + int64(8*c.dims)*4 + int64(len(c.lmads))*lmadBytes(c.dims)
}

// Footprint reports the repeat compressor's approximate live bytes in
// O(1). Every descriptor owns one start-key index entry, so the index is
// covered by the descriptor count.
func (c *RepeatCompressor) Footprint() int64 {
	return compressorBase + int64(8*c.dims)*4 +
		int64(len(c.lmads))*(lmadBytes(c.dims)+8+startKeyBytes)
}
