// Package whomp implements WHOMP, the paper's lossless whole-stream memory
// profiler (§3).
//
// WHOMP translates the access trace into object-relative form, decomposes it
// horizontally along all four dimensions (instruction ID, group, object,
// offset), and feeds each dimension stream into its own Sequitur compressor.
// The result is the OMSG — the object-relative multi-dimensional Sequitur
// grammar — plus the OMC's object lifetime table, which together losslessly
// encode the entire trace. The package also provides the RASG baseline (the
// conventional raw-address Sequitur grammar) that Figure 5 compares against.
//
// The four dimension grammars are data-independent and can build
// concurrently: NewParallel runs one grammar worker per dimension behind a
// broadcast stage, producing a profile byte-identical to the sequential
// one (see ParallelSCC and docs/ARCHITECTURE.md).
package whomp

import (
	"ormprof/internal/decomp"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/sequitur"
	"ormprof/internal/trace"
)

// Profile is a collected WHOMP profile: one grammar per decomposed
// dimension plus the auxiliary object table.
type Profile struct {
	Workload string
	Records  uint64

	// Grammars holds the OMSG: dimension -> Sequitur grammar.
	Grammars map[decomp.Dimension]*sequitur.Grammar

	// Objects is the auxiliary (run- and allocator-dependent) object
	// lifetime table, kept separate from the invariant object-relative
	// grammars as §2.3 prescribes.
	Objects *ObjectTable
}

// SCC is WHOMP's separation-and-compression component: it horizontally
// decomposes the incoming object-relative stream and Sequitur-compresses
// each dimension online.
type SCC struct {
	grammars map[decomp.Dimension]*sequitur.Grammar
	records  uint64
}

// NewSCC returns an empty WHOMP compression stage.
func NewSCC() *SCC {
	g := make(map[decomp.Dimension]*sequitur.Grammar, len(decomp.Dims))
	for _, d := range decomp.Dims {
		g[d] = sequitur.New()
	}
	return &SCC{grammars: g}
}

// Consume implements profiler.SCC: one record appends one symbol to each
// dimension grammar.
func (s *SCC) Consume(r profiler.Record) {
	s.records++
	for _, d := range decomp.Dims {
		s.grammars[d].Append(decomp.Value(r, d))
	}
}

// Finish implements profiler.SCC.
func (s *SCC) Finish() {}

// Grammars exposes the dimension grammars (live; read after Finish).
func (s *SCC) Grammars() map[decomp.Dimension]*sequitur.Grammar { return s.grammars }

// Records reports how many records the SCC has consumed.
func (s *SCC) Records() uint64 { return s.records }

// grammarSCC is the contract between the Profiler front end and a WHOMP
// compression stage: the sequential SCC and the ParallelSCC both satisfy
// it and produce identical grammars for the same input stream.
type grammarSCC interface {
	profiler.SCC
	Grammars() map[decomp.Dimension]*sequitur.Grammar
	Records() uint64
}

// Profiler bundles the full WHOMP pipeline: OMC + CDC + SCC. It is a
// trace.Sink; feed it the probe event stream and call Profile when done.
type Profiler struct {
	omc *omc.OMC
	scc grammarSCC
	cdc *profiler.CDC
}

// New creates a WHOMP profiler. siteNames optionally names allocation sites
// (static symbols); it may be nil.
func New(siteNames map[trace.SiteID]string) *Profiler {
	o := omc.New(siteNames)
	scc := NewSCC()
	return &Profiler{omc: o, scc: scc, cdc: profiler.NewCDC(o, scc)}
}

// NewParallel creates a WHOMP profiler whose four dimension grammars build
// concurrently (one goroutine per dimension, fed by a broadcast stage).
// workers ≤ 0 selects runtime.GOMAXPROCS(0); workers == 1 returns the plain
// sequential profiler. The resulting profile is byte-identical to the
// sequential one — each grammar consumes the same symbol stream in the same
// order either way.
func NewParallel(siteNames map[trace.SiteID]string, workers int) *Profiler {
	if profiler.DefaultWorkers(workers) <= 1 {
		return New(siteNames)
	}
	o := omc.New(siteNames)
	scc := NewParallelSCC()
	return &Profiler{omc: o, scc: scc, cdc: profiler.NewCDC(o, scc)}
}

// Emit implements trace.Sink.
func (p *Profiler) Emit(e trace.Event) { p.cdc.Emit(e) }

// FromSource drains a streaming event source (a replayed trace file, say)
// through a parallel WHOMP profiler and returns the finished profile. The
// profiler holds its grammars and object table, never the event stream, so
// memory is bounded by the profile, not the trace.
func FromSource(workload string, src trace.Source, siteNames map[trace.SiteID]string, workers int) (*Profile, error) {
	p := NewParallel(siteNames, workers)
	if _, err := trace.Drain(src, p); err != nil {
		return nil, err
	}
	return p.Profile(workload), nil
}

// OMC exposes the profiler's object-management component.
func (p *Profiler) OMC() *omc.OMC { return p.omc }

// Profile finalizes collection and returns the profile. For a parallel
// profiler this joins the grammar workers first, so the returned profile is
// complete and safe to read.
func (p *Profiler) Profile(workload string) *Profile {
	p.cdc.Finish()
	return &Profile{
		Workload: workload,
		Records:  p.scc.Records(),
		Grammars: p.scc.Grammars(),
		Objects:  FromOMC(p.omc),
	}
}

// Symbols reports the OMSG size in total grammar symbols (the sum over the
// four dimension grammars), the grammar-size metric used for the Figure 5
// comparison.
func (p *Profile) Symbols() int {
	n := 0
	for _, g := range p.Grammars {
		n += g.Symbols()
	}
	return n
}

// EncodedBytes reports the OMSG size in serialized bytes (grammars only,
// excluding the object table, which RASG does not carry either).
func (p *Profile) EncodedBytes() int {
	n := 0
	for _, g := range p.Grammars {
		n += g.EncodedSize()
	}
	return n
}

// ReconstructTuples expands the four grammars and zips them back into the
// object-relative record stream (with time stamps equal to positions).
func (p *Profile) ReconstructTuples() []profiler.Record {
	h := decomp.Horizontal{
		Instr:  p.Grammars[decomp.DimInstr].Expand(),
		Group:  p.Grammars[decomp.DimGroup].Expand(),
		Object: p.Grammars[decomp.DimObject].Expand(),
		Offset: p.Grammars[decomp.DimOffset].Expand(),
	}
	return h.Recompose()
}

// ReconstructAccesses regenerates the original (instruction, raw address)
// access trace from the profile — the losslessness witness: OMSG + object
// table carry everything the raw trace did.
func (p *Profile) ReconstructAccesses() ([]trace.InstrID, []trace.Addr, error) {
	recs := p.ReconstructTuples()
	instrs := make([]trace.InstrID, len(recs))
	addrs := make([]trace.Addr, len(recs))
	for i, r := range recs {
		a, err := p.Objects.Invert(r.Ref)
		if err != nil {
			return nil, nil, err
		}
		instrs[i] = r.Instr
		addrs[i] = a
	}
	return instrs, addrs, nil
}

// RASG is the conventional raw-address Sequitur profile used as the Figure 5
// baseline: one grammar over the instruction stream and one over the raw
// address stream (the same information content as the OMSG grammars, minus
// object-relativity).
type RASG struct {
	Instr *sequitur.Grammar
	Addr  *sequitur.Grammar

	records uint64
}

// NewRASG returns an empty raw-address profiler.
func NewRASG() *RASG {
	return &RASG{Instr: sequitur.New(), Addr: sequitur.New()}
}

// Emit implements trace.Sink; object probes are ignored (a raw-address
// profiler has no use for them).
func (r *RASG) Emit(e trace.Event) {
	if e.Kind != trace.EvAccess {
		return
	}
	r.records++
	r.Instr.Append(uint64(e.Instr))
	r.Addr.Append(uint64(e.Addr))
}

// Records reports the number of accesses compressed.
func (r *RASG) Records() uint64 { return r.records }

// Symbols reports the RASG size in total grammar symbols.
func (r *RASG) Symbols() int { return r.Instr.Symbols() + r.Addr.Symbols() }

// EncodedBytes reports the RASG size in serialized bytes.
func (r *RASG) EncodedBytes() int { return r.Instr.EncodedSize() + r.Addr.EncodedSize() }

// Reconstruct regenerates the access trace from the RASG.
func (r *RASG) Reconstruct() ([]trace.InstrID, []trace.Addr) {
	is := r.Instr.Expand()
	as := r.Addr.Expand()
	instrs := make([]trace.InstrID, len(is))
	addrs := make([]trace.Addr, len(as))
	for i := range is {
		instrs[i] = trace.InstrID(is[i])
	}
	for i := range as {
		addrs[i] = trace.Addr(as[i])
	}
	return instrs, addrs
}

// CompressionGain reports Figure 5's metric: the percentage by which the
// OMSG is smaller than the RASG, using RASG size as the base. Size is the
// serialized profile size in bytes — the quantity that matters for a
// profile written to disk, and the one in which object-relativity pays off
// twice: the decomposed streams build smaller grammars *and* their symbols
// (small group/serial/offset integers) encode in fewer bytes than raw
// 47-bit addresses.
func CompressionGain(omsg *Profile, rasg *RASG) float64 {
	rs := rasg.EncodedBytes()
	if rs == 0 {
		return 0
	}
	return 100 * (1 - float64(omsg.EncodedBytes())/float64(rs))
}
