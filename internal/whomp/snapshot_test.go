package whomp

import (
	"math/rand"
	"reflect"
	"testing"

	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

func snapshotRecords(n int) []profiler.Record {
	rng := rand.New(rand.NewSource(13))
	recs := make([]profiler.Record, n)
	for i := range recs {
		recs[i] = profiler.Record{
			Instr: trace.InstrID(rng.Intn(5) + 1),
			Ref: omc.Ref{
				Group:  omc.GroupID(rng.Intn(3)),
				Object: uint32(rng.Intn(4)),
				Offset: uint64(i % 128 * 8),
			},
			Time: trace.Time(i),
		}
	}
	return recs
}

// TestWhompSCCSnapshotResumeExact: an SCC restored mid-stream and fed the
// rest of the records must end with grammars byte-identical to an
// uninterrupted run — this is the WHOMP half of the daemon's
// resume-is-byte-identical guarantee.
func TestWhompSCCSnapshotResumeExact(t *testing.T) {
	recs := snapshotRecords(4000)
	cuts := []int{0, 1, 10, len(recs) / 3, len(recs) / 2, len(recs) - 1, len(recs)}
	for _, cut := range cuts {
		full := NewSCC()
		for _, r := range recs {
			full.Consume(r)
		}

		s := NewSCC()
		for _, r := range recs[:cut] {
			s.Consume(r)
		}
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: Snapshot: %v", cut, err)
		}
		restored, err := SCCFromSnapshot(snap)
		if err != nil {
			t.Fatalf("cut %d: SCCFromSnapshot: %v", cut, err)
		}
		for _, r := range recs[cut:] {
			restored.Consume(r)
		}

		if restored.Records() != full.Records() {
			t.Errorf("cut %d: records = %d, want %d", cut, restored.Records(), full.Records())
		}
		s1, err := restored.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		s2, err := full.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("cut %d: resumed grammars differ from uninterrupted run", cut)
		}
	}
}

// TestWhompSCCFromSnapshotRejectsCorrupt: broken snapshots error, not panic.
func TestWhompSCCFromSnapshotRejectsCorrupt(t *testing.T) {
	s := NewSCC()
	for _, r := range snapshotRecords(300) {
		s.Consume(r)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Grammars = snap.Grammars[:2]
	if _, err := SCCFromSnapshot(snap); err == nil {
		t.Error("SCCFromSnapshot accepted a snapshot with missing grammars")
	}
	snap2, _ := s.Snapshot()
	snap2.Grammars[0].Rules = nil
	if _, err := SCCFromSnapshot(snap2); err == nil {
		t.Error("SCCFromSnapshot accepted a snapshot with an empty rule set")
	}
}
