package whomp

import (
	"bytes"
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// collect runs the linked-list demo and returns its trace, site names, and
// machine.
func collectDemo(t *testing.T) (*trace.Buffer, map[trace.SiteID]string) {
	t.Helper()
	prog := workloads.NewLinkedList(workloads.Config{Scale: 1, Seed: 1})
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)
	return buf, m.StaticSites()
}

func TestWHOMPLossless(t *testing.T) {
	// The central §3 property: the OMSG plus the object table regenerate
	// the raw access trace exactly.
	buf, sites := collectDemo(t)
	p := New(sites)
	buf.Replay(p)
	profile := p.Profile("linkedlist")

	accesses := buf.Accesses()
	if profile.Records != uint64(len(accesses)) {
		t.Fatalf("profile has %d records, trace has %d accesses", profile.Records, len(accesses))
	}

	instrs, addrs, err := profile.ReconstructAccesses()
	if err != nil {
		t.Fatalf("ReconstructAccesses: %v", err)
	}
	for i, a := range accesses {
		if instrs[i] != a.Instr {
			t.Fatalf("access %d: instr %d, want %d", i, instrs[i], a.Instr)
		}
		if addrs[i] != a.Addr {
			t.Fatalf("access %d: addr %#x, want %#x", i, uint64(addrs[i]), uint64(a.Addr))
		}
	}
}

func TestRASGLossless(t *testing.T) {
	buf, _ := collectDemo(t)
	r := NewRASG()
	buf.Replay(r)

	accesses := buf.Accesses()
	if r.Records() != uint64(len(accesses)) {
		t.Fatalf("RASG has %d records", r.Records())
	}
	instrs, addrs := r.Reconstruct()
	for i, a := range accesses {
		if instrs[i] != a.Instr || addrs[i] != a.Addr {
			t.Fatalf("access %d mismatch", i)
		}
	}
}

func TestProfileSerializationRoundTrip(t *testing.T) {
	buf, sites := collectDemo(t)
	p := New(sites)
	buf.Replay(p)
	profile := p.Profile("linkedlist")

	var out bytes.Buffer
	n, err := profile.WriteTo(&out)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(out.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, out.Len())
	}

	back, err := ReadProfile(&out)
	if err != nil {
		t.Fatalf("ReadProfile: %v", err)
	}
	if back.Workload != "linkedlist" || back.Records != profile.Records {
		t.Errorf("metadata: %q %d", back.Workload, back.Records)
	}

	// The round-tripped profile must reconstruct the identical trace.
	i1, a1, err := profile.ReconstructAccesses()
	if err != nil {
		t.Fatal(err)
	}
	i2, a2, err := back.ReconstructAccesses()
	if err != nil {
		t.Fatalf("reconstruct from decoded profile: %v", err)
	}
	if len(i1) != len(i2) {
		t.Fatalf("lengths differ: %d vs %d", len(i1), len(i2))
	}
	for i := range i1 {
		if i1[i] != i2[i] || a1[i] != a2[i] {
			t.Fatalf("access %d differs after serialization", i)
		}
	}

	// Object tables must agree.
	if back.Objects.NumObjects() != profile.Objects.NumObjects() {
		t.Errorf("object counts differ: %d vs %d", back.Objects.NumObjects(), profile.Objects.NumObjects())
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadProfile(bytes.NewReader([]byte("NOTAPROF"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadProfile(bytes.NewReader([]byte("ORMWHOMP\xff"))); err == nil {
		t.Error("bad version accepted")
	}
	// Truncation anywhere must fail, not panic.
	buf, sites := collectDemo(t)
	p := New(sites)
	buf.Replay(p)
	var full bytes.Buffer
	if _, err := p.Profile("x").WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{10, full.Len() / 2, full.Len() - 1} {
		if _, err := ReadProfile(bytes.NewReader(full.Bytes()[:cut])); err == nil {
			t.Errorf("truncated profile (%d bytes) accepted", cut)
		}
	}
}

func TestCompressionGainOnRegularWorkload(t *testing.T) {
	// A pointer-chasing workload with allocation clutter: the
	// object-relative profile must be smaller (the paper's headline
	// claim, Figure 5).
	prog := workloads.NewLinkedList(workloads.Config{Scale: 4, Seed: 2})
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)

	p := New(m.StaticSites())
	buf.Replay(p)
	profile := p.Profile("linkedlist")
	rasg := NewRASG()
	buf.Replay(rasg)

	gain := CompressionGain(profile, rasg)
	if gain <= 0 {
		t.Errorf("OMSG not smaller than RASG on linked-list traversal: gain = %.1f%% (OMSG %d bytes, RASG %d bytes)",
			gain, profile.EncodedBytes(), rasg.EncodedBytes())
	}
}

func TestObjectTableInvertErrors(t *testing.T) {
	tbl := &ObjectTable{Groups: []GroupEntry{{
		ID: 1, Site: 1, Name: "g",
		Objects: []ObjectEntry{{Start: 0x1000, Size: 16}},
	}}}
	if _, err := tbl.Invert(refOf(1, 0, 8)); err != nil {
		t.Errorf("valid ref: %v", err)
	}
	if _, err := tbl.Invert(refOf(1, 0, 16)); err == nil {
		t.Error("offset at object size accepted")
	}
	if _, err := tbl.Invert(refOf(1, 1, 0)); err == nil {
		t.Error("unknown serial accepted")
	}
	if _, err := tbl.Invert(refOf(9, 0, 0)); err == nil {
		t.Error("unknown group accepted")
	}
}

func refOf(g, obj, off uint64) omc.Ref {
	return omc.Ref{Group: omc.GroupID(g), Object: uint32(obj), Offset: off}
}
