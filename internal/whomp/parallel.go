package whomp

import (
	"context"

	"ormprof/internal/decomp"
	"ormprof/internal/profiler"
	"ormprof/internal/sequitur"
)

// ParallelSCC is the concurrent WHOMP compression stage: the four dimension
// grammars of the OMSG are data-independent (horizontal decomposition
// splits the tuple stream into four disjoint symbol streams), so each
// builds in its own goroutine. A broadcast stage fans the object-relative
// record stream out to the four grammar workers in batches; every worker
// extracts its own dimension's symbol from each record.
//
// Determinism: each grammar worker receives the full record stream in
// original order over a FIFO queue, so every grammar is built from exactly
// the symbol sequence the sequential SCC would feed it, and the resulting
// profile serializes byte-identically (asserted by TestParallelDeterminism).
//
// The degree of parallelism is the number of compressible dimensions
// (len(decomp.Dims) = 4) plus the producing CDC, regardless of any larger
// worker budget — there is no finer-grained split of a single Sequitur
// grammar, whose construction is inherently sequential in its input.
type ParallelSCC struct {
	bc       *profiler.Broadcast
	grammars map[decomp.Dimension]*sequitur.Grammar
}

// NewParallelSCC starts one grammar worker per decomposed dimension.
func NewParallelSCC() *ParallelSCC {
	return NewParallelSCCContext(context.Background())
}

// NewParallelSCCContext is NewParallelSCC with cooperative cancellation
// wired into the broadcast stage (see profiler.NewBroadcastContext).
func NewParallelSCCContext(ctx context.Context) *ParallelSCC {
	grammars := make(map[decomp.Dimension]*sequitur.Grammar, len(decomp.Dims))
	sccs := make([]profiler.SCC, 0, len(decomp.Dims))
	for _, d := range decomp.Dims {
		d := d
		g := sequitur.New()
		grammars[d] = g
		sccs = append(sccs, profiler.SCCFunc(func(r profiler.Record) {
			g.Append(decomp.Value(r, d))
		}))
	}
	return &ParallelSCC{
		bc:       profiler.NewBroadcastContext(ctx, profiler.DefaultShardBatch, sccs...),
		grammars: grammars,
	}
}

// Consume implements profiler.SCC: the record is batched and broadcast to
// the dimension workers.
func (p *ParallelSCC) Consume(r profiler.Record) { p.bc.Consume(r) }

// Finish implements profiler.SCC: it flushes the broadcast stage and joins
// the grammar workers; afterwards the grammars are complete and safe to
// read.
func (p *ParallelSCC) Finish() { p.bc.Finish() }

// Grammars exposes the dimension grammars (read after Finish).
func (p *ParallelSCC) Grammars() map[decomp.Dimension]*sequitur.Grammar { return p.grammars }

// Records reports how many records the SCC has consumed.
func (p *ParallelSCC) Records() uint64 { return p.bc.Records() }

// Err reports the broadcast stage's first fault (nil after a clean run).
func (p *ParallelSCC) Err() error { return p.bc.Err() }
