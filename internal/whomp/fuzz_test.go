package whomp

import (
	"bytes"
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// FuzzReadProfile feeds arbitrary bytes to the WHOMP profile decoder: it
// must never panic, and anything accepted must reconstruct or fail cleanly.
func FuzzReadProfile(f *testing.F) {
	buf, sites := collectDemoForFuzz()
	p := New(sites)
	buf.Replay(p)
	var enc bytes.Buffer
	if _, err := p.Profile("seed").WriteTo(&enc); err != nil {
		f.Fatal(err)
	}
	f.Add(enc.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ORMWHOMP"))
	f.Add(append([]byte("ORMWHOMP"), 1, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		prof, err := ReadProfile(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted profiles must be internally navigable without panics.
		prof.Symbols()
		prof.EncodedBytes()
		prof.ReconstructAccesses() //nolint:errcheck // may fail, must not panic
	})
}

func collectDemoForFuzz() (*trace.Buffer, map[trace.SiteID]string) {
	prog := workloads.NewLinkedList(workloads.Config{Scale: 1, Seed: 1})
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)
	return buf, m.StaticSites()
}
