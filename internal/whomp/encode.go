package whomp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ormprof/internal/decomp"
	"ormprof/internal/omc"
	"ormprof/internal/sequitur"
	"ormprof/internal/trace"
)

// Profile file format:
//
//	magic    "ORMWHOMP"
//	u8       version (1)
//	string   workload (uvarint length + bytes)
//	uvarint  record count
//	4 ×      grammar blob (uvarint length + sequitur encoding), in
//	         dimension order instr, group, object, offset
//	object table:
//	  uvarint  group count
//	  per group: uvarint site, string name, uvarint object count,
//	             per object: uvarint start, size, allocTime,
//	                         freeTime+freed flag (2·t + freed)

const profileMagic = "ORMWHOMP"

// profileVersion is bumped on any incompatible format change.
const profileVersion = 1

// ErrBadProfile reports a malformed or unsupported profile file.
var ErrBadProfile = errors.New("whomp: bad profile file")

// maxReadRecords bounds the access count ReadProfile will materialize
// (grammar expansions are one symbol per access per dimension).
const maxReadRecords = 1 << 26

// WriteTo serializes the profile. It returns the number of bytes written.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := &countingWriter{w: bw}

	if _, err := n.Write([]byte(profileMagic)); err != nil {
		return n.n, err
	}
	if _, err := n.Write([]byte{profileVersion}); err != nil {
		return n.n, err
	}
	writeString(n, p.Workload)
	writeUvarint(n, p.Records)
	for _, d := range decomp.Dims {
		blob := p.Grammars[d].Encode()
		writeUvarint(n, uint64(len(blob)))
		if _, err := n.Write(blob); err != nil {
			return n.n, err
		}
	}
	writeUvarint(n, uint64(len(p.Objects.Groups)))
	for _, g := range p.Objects.Groups {
		writeUvarint(n, uint64(g.Site))
		writeString(n, g.Name)
		writeUvarint(n, uint64(len(g.Objects)))
		for _, o := range g.Objects {
			writeUvarint(n, uint64(o.Start))
			writeUvarint(n, uint64(o.Size))
			writeUvarint(n, uint64(o.AllocTime))
			ft := uint64(o.FreeTime) * 2
			if o.Freed {
				ft++
			}
			writeUvarint(n, ft)
		}
	}
	if n.err != nil {
		return n.n, n.err
	}
	if err := bw.Flush(); err != nil {
		return n.n, err
	}
	return n.n, nil
}

// ReadProfile parses a profile written by WriteTo. The returned profile's
// grammars are decoded grammar structures able to expand; they are stored
// back as live grammars by re-feeding the expansion, so the result supports
// the same operations as a freshly collected profile.
func ReadProfile(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(profileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	if string(magic) != profileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadProfile, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	if ver != profileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadProfile, ver)
	}
	p := &Profile{Grammars: make(map[decomp.Dimension]*sequitur.Grammar), Objects: &ObjectTable{}}
	if p.Workload, err = readString(br); err != nil {
		return nil, err
	}
	if p.Records, err = readUvarint(br); err != nil {
		return nil, err
	}
	for _, d := range decomp.Dims {
		blobLen, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if blobLen > 1<<26 {
			return nil, fmt.Errorf("%w: unreasonable grammar size %d", ErrBadProfile, blobLen)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, fmt.Errorf("%w: grammar %v: %v", ErrBadProfile, d, err)
		}
		dec, err := sequitur.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("%w: grammar %v: %v", ErrBadProfile, d, err)
		}
		// Each dimension stream has exactly one symbol per recorded access;
		// bounding the expansion by the declared record count blocks
		// zip-bomb grammars from untrusted inputs.
		if p.Records > maxReadRecords {
			return nil, fmt.Errorf("%w: unreasonable record count %d", ErrBadProfile, p.Records)
		}
		seq, err := dec.ExpandLimit(int(p.Records))
		if err != nil {
			return nil, fmt.Errorf("%w: grammar %v: %v", ErrBadProfile, d, err)
		}
		if uint64(len(seq)) != p.Records {
			return nil, fmt.Errorf("%w: grammar %v expands to %d symbols, profile declares %d records",
				ErrBadProfile, d, len(seq), p.Records)
		}
		g := sequitur.New()
		g.AppendAll(seq)
		p.Grammars[d] = g
	}
	nGroups, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for gi := uint64(0); gi < nGroups; gi++ {
		var ge GroupEntry
		ge.ID = omc.GroupID(gi + 1)
		site, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		ge.Site = trace.SiteID(site)
		if ge.Name, err = readString(br); err != nil {
			return nil, err
		}
		nObjs, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		for oi := uint64(0); oi < nObjs; oi++ {
			var oe ObjectEntry
			v, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			oe.Start = trace.Addr(v)
			if v, err = readUvarint(br); err != nil {
				return nil, err
			}
			oe.Size = uint32(v)
			if v, err = readUvarint(br); err != nil {
				return nil, err
			}
			oe.AllocTime = trace.Time(v)
			if v, err = readUvarint(br); err != nil {
				return nil, err
			}
			oe.Freed = v&1 == 1
			oe.FreeTime = trace.Time(v >> 1)
			ge.Objects = append(ge.Objects, oe)
		}
		p.Objects.Groups = append(p.Objects.Groups, ge)
	}
	return p, nil
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // countingWriter latches the error
}

func writeString(w io.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s) //nolint:errcheck // countingWriter latches the error
}

func readUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	return v, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := readUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("%w: unreasonable string length %d", ErrBadProfile, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	return string(buf), nil
}
