package whomp_test

import (
	"fmt"

	"ormprof/internal/memsim"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
)

// Collect a WHOMP profile for a tiny two-pass array walk and show that the
// profile regenerates the raw access trace exactly.
func Example() {
	// Run the instrumented program.
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	arr := m.Alloc(1, 64)
	for pass := 0; pass < 2; pass++ {
		for off := trace.Addr(0); off < 64; off += 8 {
			m.Load(1, arr+off, 8)
		}
	}
	m.Free(arr)
	m.End()

	// Profile it.
	p := whomp.New(nil)
	buf.Replay(p)
	profile := p.Profile("walk")

	instrs, addrs, err := profile.ReconstructAccesses()
	if err != nil {
		panic(err)
	}
	fmt.Println("records:", profile.Records)
	fmt.Println("first:", instrs[0], "at offset", addrs[0]-arr)
	fmt.Println("last:", instrs[len(instrs)-1], "at offset", addrs[len(addrs)-1]-arr)

	// The same accesses compressed without object-relativity:
	rasg := whomp.NewRASG()
	buf.Replay(rasg)
	fmt.Println("lossless both ways:", profile.Records == rasg.Records())
	// Output:
	// records: 16
	// first: 1 at offset 0
	// last: 1 at offset 56
	// lossless both ways: true
}
