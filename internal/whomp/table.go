package whomp

import (
	"fmt"

	"ormprof/internal/omc"
	"ormprof/internal/trace"
)

// ObjectTable is the serializable snapshot of the OMC's object lifetime
// information: for every group, the address range and lifetime of each of
// its objects, in serial order. It is the run-dependent half of a WHOMP
// profile; combined with the OMSG it makes the profile lossless.
type ObjectTable struct {
	Groups []GroupEntry
}

// GroupEntry is one group's objects.
type GroupEntry struct {
	ID      omc.GroupID
	Site    trace.SiteID
	Name    string
	Objects []ObjectEntry
}

// ObjectEntry is one object's lifetime record.
type ObjectEntry struct {
	Start     trace.Addr
	Size      uint32
	AllocTime trace.Time
	FreeTime  trace.Time
	Freed     bool
}

// FromOMC snapshots an OMC's object table.
func FromOMC(o *omc.OMC) *ObjectTable {
	groups := o.Groups()
	t := &ObjectTable{Groups: make([]GroupEntry, 0, len(groups))}
	for _, g := range groups {
		ge := GroupEntry{ID: g.ID, Site: g.Site, Name: g.Name}
		for _, obj := range o.Objects(g.ID) {
			ge.Objects = append(ge.Objects, ObjectEntry{
				Start:     obj.Start,
				Size:      obj.Size,
				AllocTime: obj.AllocTime,
				FreeTime:  obj.FreeTime,
				Freed:     obj.Freed,
			})
		}
		t.Groups = append(t.Groups, ge)
	}
	return t
}

// Invert maps an object-relative reference back to its raw address.
func (t *ObjectTable) Invert(r omc.Ref) (trace.Addr, error) {
	if r.Group == omc.Unmapped {
		return trace.Addr(r.Offset), nil
	}
	gi := int(r.Group) - 1
	if gi < 0 || gi >= len(t.Groups) {
		return 0, fmt.Errorf("whomp: reference to unknown group %d", r.Group)
	}
	objs := t.Groups[gi].Objects
	if int(r.Object) >= len(objs) {
		return 0, fmt.Errorf("whomp: group %d has no object %d", r.Group, r.Object)
	}
	o := objs[r.Object]
	if r.Offset >= uint64(o.Size) {
		return 0, fmt.Errorf("whomp: offset %d out of object of size %d", r.Offset, o.Size)
	}
	return o.Start + trace.Addr(r.Offset), nil
}

// NumObjects reports the total object count across groups.
func (t *ObjectTable) NumObjects() int {
	n := 0
	for _, g := range t.Groups {
		n += len(g.Objects)
	}
	return n
}
