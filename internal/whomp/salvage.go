package whomp

import (
	"context"
	"runtime/debug"

	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
)

// This file is the degraded-mode surface of the WHOMP pipeline: context-
// aware construction and a FromSource variant that returns the profile
// built from whatever events arrived before a fault, alongside the typed
// error, instead of discarding the work.

// NewParallelContext is NewParallel with cooperative cancellation wired
// into the broadcast fan-out stage: once ctx is done the producer stops
// queueing instead of blocking on a stalled grammar worker, and Err
// reports the cancellation. workers ≤ 1 still selects the sequential
// profiler (which has no stage to cancel).
func NewParallelContext(ctx context.Context, siteNames map[trace.SiteID]string, workers int) *Profiler {
	if profiler.DefaultWorkers(workers) <= 1 {
		return New(siteNames)
	}
	o := omc.New(siteNames)
	scc := NewParallelSCCContext(ctx)
	return &Profiler{omc: o, scc: scc, cdc: profiler.NewCDC(o, scc)}
}

// Err reports the profiler's first pipeline fault — a *profiler.WorkerError
// if a grammar worker panicked, or the context's error if cancellation cut
// the stream short. Sequential profilers always report nil. Call after
// Profile for the final verdict.
func (p *Profiler) Err() error {
	if e, ok := p.scc.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// FromSourceSalvage is the fault-tolerant FromSource: it drains src with
// panic containment and cooperative cancellation, always finalizes, and
// returns the profile built from the events delivered before any fault
// alongside the typed error (nil after a clean run). The error is the
// drain's (*tracefmt.CorruptionError for a damaged lenient trace,
// *trace.PanicError for a contained crash, ctx.Err() for cancellation) or,
// failing that, the pipeline's own Err.
func FromSourceSalvage(ctx context.Context, workload string, src trace.Source, siteNames map[trace.SiteID]string, workers int) (*Profile, error) {
	p := NewParallelContext(ctx, siteNames, workers)
	_, err := trace.DrainSalvage(ctx, src, p)
	prof, ferr := finalizeSalvage(p, workload)
	if err == nil {
		err = ferr
	}
	if err == nil {
		err = p.Err()
	}
	return prof, err
}

// finalizeSalvage finalizes the profile with panic containment — after a
// contained fault upstream the pipeline state may be inconsistent, and a
// crash while finalizing must not lose the caller's typed error path.
func finalizeSalvage(p *Profiler, workload string) (prof *Profile, err error) {
	defer func() {
		if v := recover(); v != nil {
			prof, err = nil, &trace.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return p.Profile(workload), nil
}
