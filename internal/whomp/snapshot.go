package whomp

import (
	"fmt"

	"ormprof/internal/decomp"
	"ormprof/internal/sequitur"
)

// This file implements exact SCC snapshots for checkpoint/resume
// (internal/checkpoint): the four dimension grammars (in decomp.Dims order)
// plus the record counter.

// SCCSnapshot is the complete mutable state of a WHOMP SCC. Grammars are
// indexed parallel to decomp.Dims.
type SCCSnapshot struct {
	Records  uint64
	Grammars []*sequitur.Snapshot
}

// Snapshot captures the SCC's complete state; the result shares no memory
// with the live SCC.
func (s *SCC) Snapshot() (*SCCSnapshot, error) {
	snap := &SCCSnapshot{
		Records:  s.records,
		Grammars: make([]*sequitur.Snapshot, 0, len(decomp.Dims)),
	}
	for _, d := range decomp.Dims {
		gs, err := s.grammars[d].Snapshot()
		if err != nil {
			return nil, fmt.Errorf("whomp: dimension %v: %w", d, err)
		}
		snap.Grammars = append(snap.Grammars, gs)
	}
	return snap, nil
}

// SCCFromSnapshot reconstructs an SCC that behaves identically to the
// snapshotted one for all future records.
func SCCFromSnapshot(snap *SCCSnapshot) (*SCC, error) {
	if len(snap.Grammars) != len(decomp.Dims) {
		return nil, fmt.Errorf("whomp: snapshot has %d grammars, want %d", len(snap.Grammars), len(decomp.Dims))
	}
	s := &SCC{
		grammars: make(map[decomp.Dimension]*sequitur.Grammar, len(decomp.Dims)),
		records:  snap.Records,
	}
	for i, d := range decomp.Dims {
		g, err := sequitur.FromSnapshot(snap.Grammars[i])
		if err != nil {
			return nil, fmt.Errorf("whomp: dimension %v: %w", d, err)
		}
		s.grammars[d] = g
	}
	return s, nil
}
