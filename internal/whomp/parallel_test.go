package whomp

import (
	"bytes"
	"testing"
)

// TestParallelDeterminism is the parallel pipeline's determinism gate: the
// profile built with concurrent dimension-grammar workers must serialize
// byte-identically to the sequential profile.
func TestParallelDeterminism(t *testing.T) {
	buf, sites := collectDemo(t)

	seq := New(sites)
	buf.Replay(seq)
	var seqBytes bytes.Buffer
	if _, err := seq.Profile("linkedlist").WriteTo(&seqBytes); err != nil {
		t.Fatalf("sequential WriteTo: %v", err)
	}

	for _, workers := range []int{1, 2, 8} {
		par := NewParallel(sites, workers)
		buf.Replay(par)
		profile := par.Profile("linkedlist")
		var parBytes bytes.Buffer
		if _, err := profile.WriteTo(&parBytes); err != nil {
			t.Fatalf("workers=%d WriteTo: %v", workers, err)
		}
		if !bytes.Equal(seqBytes.Bytes(), parBytes.Bytes()) {
			t.Fatalf("workers=%d: profile differs from sequential (%d vs %d bytes)",
				workers, parBytes.Len(), seqBytes.Len())
		}
	}
}

// TestParallelLossless re-runs the central §3 losslessness property through
// the parallel pipeline: grammar workers must not reorder or drop symbols.
func TestParallelLossless(t *testing.T) {
	buf, sites := collectDemo(t)
	p := NewParallel(sites, 4)
	buf.Replay(p)
	profile := p.Profile("linkedlist")

	accesses := buf.Accesses()
	if profile.Records != uint64(len(accesses)) {
		t.Fatalf("profile has %d records, trace has %d accesses", profile.Records, len(accesses))
	}
	instrs, addrs, err := profile.ReconstructAccesses()
	if err != nil {
		t.Fatalf("ReconstructAccesses: %v", err)
	}
	for i, a := range accesses {
		if instrs[i] != a.Instr || addrs[i] != a.Addr {
			t.Fatalf("access %d: got (%d, %#x), want (%d, %#x)",
				i, instrs[i], uint64(addrs[i]), a.Instr, uint64(a.Addr))
		}
	}
}
