package whomp

// Footprint reports the compression stage's approximate live bytes: the
// sum over the four dimension grammars, each of which maintains its own
// O(1) estimate.
func (s *SCC) Footprint() int64 {
	var n int64
	for _, g := range s.grammars {
		n += g.Footprint()
	}
	return n
}

// Footprint reports the pipeline's approximate live bytes (OMC + SCC).
// The parallel SCC does not account — governed runs are sequential — so
// it contributes zero.
func (p *Profiler) Footprint() int64 {
	n := p.omc.Footprint()
	if f, ok := p.scc.(interface{ Footprint() int64 }); ok {
		n += f.Footprint()
	}
	return n
}

// Footprint reports the raw-address profiler's approximate live bytes.
func (r *RASG) Footprint() int64 {
	return r.Instr.Footprint() + r.Addr.Footprint()
}
