// Package prefetch evaluates stride-based software prefetching directed by
// LEAP profiles — the paper's second target optimization (§4: "stride-based
// prefetching performs prefetching for strided memory accesses. To
// facilitate this, strongly strided instructions … must be identified").
//
// A plan maps each strongly strided instruction to a prefetch rule (its
// dominant stride and a lookahead distance). The evaluator replays the
// object-relative stream through the cache simulator, issuing a prefetch
// ahead of every execution of a planned instruction, and reports the demand
// misses with and without prefetching plus the prefetch accuracy.
package prefetch

import (
	"sort"

	"ormprof/internal/cachesim"
	"ormprof/internal/layout"
	"ormprof/internal/leap"
	"ormprof/internal/omc"
	ormplan "ormprof/internal/plan"
	"ormprof/internal/profiler"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
)

// Rule is one instruction's prefetch directive.
type Rule struct {
	Stride int64
	// Distance is how many strides ahead to fetch.
	Distance int64
}

// Plan maps strongly strided instructions to rules.
type Plan map[trace.InstrID]Rule

// DefaultLookahead is how many iterations ahead the planner targets —
// enough to cover a memory latency of a couple hundred cycles at a few
// cycles per iteration.
const DefaultLookahead = 16

// BuildPlan derives a prefetch plan from a LEAP profile: one rule per
// strongly strided instruction whose stride reaches a new cache line within
// the lookahead (prefetching inside the current line is useless).
func BuildPlan(p *leap.Profile, lineBytes int64, lookahead int64) Plan {
	if lookahead <= 0 {
		lookahead = DefaultLookahead
	}
	plan := make(Plan)
	for id, info := range stride.FromLEAP(p) {
		if info.Stride == 0 {
			continue
		}
		s := info.Stride
		if s < 0 {
			s = -s
		}
		if s*lookahead < lineBytes {
			continue // never leaves the current line within the window
		}
		plan[id] = Rule{Stride: info.Stride, Distance: lookahead}
	}
	return plan
}

// Instrs lists the planned instructions in ascending order.
func (p Plan) Instrs() []trace.InstrID {
	ids := make([]trace.InstrID, 0, len(p))
	for id := range p {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Footprint reports the plan's memory in bytes (O(1): entry count times
// entry size), so a governed pipeline can account for it.
func (p Plan) Footprint() int64 {
	const entrySize = 4 + 16 + 8 // key + two rule fields + map overhead share
	return int64(len(p)) * entrySize
}

// Rules exports the plan as sorted ORMPLAN prefetch rules.
func (p Plan) Rules() []ormplan.PrefetchRule {
	out := make([]ormplan.PrefetchRule, 0, len(p))
	for _, id := range p.Instrs() {
		r := p[id]
		out = append(out, ormplan.PrefetchRule{Instr: id, Stride: r.Stride, Distance: r.Distance})
	}
	return out
}

// FromRules rebuilds a plan from serialized ORMPLAN rules.
func FromRules(rules []ormplan.PrefetchRule) Plan {
	p := make(Plan, len(rules))
	for _, r := range rules {
		p[r.Instr] = Rule{Stride: r.Stride, Distance: r.Distance}
	}
	return p
}

// Result compares demand misses without and with prefetching.
type Result struct {
	Baseline   cachesim.Stats
	Prefetched cachesim.Stats
	// Issued counts prefetch line touches; Wasted the already-resident
	// ones.
	Issued, Wasted uint64
}

// MissReduction reports the percentage of demand misses removed.
func (r Result) MissReduction() float64 {
	if r.Baseline.Misses == 0 {
		return 0
	}
	return 100 * (1 - float64(r.Prefetched.Misses)/float64(r.Baseline.Misses))
}

// Accuracy reports the fraction of issued prefetch lines that were not
// already resident (an upper bound on usefulness).
func (r Result) Accuracy() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Issued-r.Wasted) / float64(r.Issued)
}

// Evaluate replays the object-relative stream under cfg twice — without and
// with the plan — resolving addresses through the given layout resolver.
func Evaluate(recs []profiler.Record, resolve layout.Resolver, plan Plan, cfg cachesim.Config) Result {
	base := cachesim.New(cfg)
	for _, r := range recs {
		if addr, ok := resolve(r.Ref); ok {
			base.Access(addr, r.Size)
		}
	}

	pf := cachesim.New(cfg)
	for _, r := range recs {
		addr, ok := resolve(r.Ref)
		if !ok {
			continue
		}
		if rule, planned := plan[r.Instr]; planned {
			// Fetch the line the instruction will touch Distance
			// iterations from now; clamp within the object so the
			// prefetcher never faults past it.
			target := r.Ref
			off := int64(target.Offset) + rule.Stride*rule.Distance
			if off >= 0 {
				target.Offset = uint64(off)
				if pAddr, ok := resolve(target); ok {
					pf.Prefetch(pAddr, r.Size)
				}
			}
		}
		pf.Access(addr, r.Size)
	}

	st := pf.Stats()
	return Result{
		Baseline:   base.Stats(),
		Prefetched: st,
		Issued:     st.Prefetches,
		Wasted:     st.PrefetchHits,
	}
}

// EvaluateProfile is the convenience path: build the plan from the profile
// and evaluate against the original layout.
func EvaluateProfile(recs []profiler.Record, o *omc.OMC, p *leap.Profile, cfg cachesim.Config) (Plan, Result) {
	plan := BuildPlan(p, int64(cfg.LineBytes), DefaultLookahead)
	resolve := layout.OriginalResolver(layout.OMCInfo{OMC: o})
	return plan, Evaluate(recs, resolve, plan, cfg)
}
