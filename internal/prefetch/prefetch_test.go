package prefetch

import (
	"testing"

	"ormprof/internal/cachesim"
	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// streamingTrace: a large array swept once with a 64-byte stride — every
// access is a cold miss without prefetching; with stride prefetching the
// demand misses collapse.
func streamingTrace() *trace.Buffer {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	const n = 4096
	arr := m.Alloc(1, n*64)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			m.Load(1, arr+trace.Addr(i*64), 8)
		}
	}
	m.Free(arr)
	m.End()
	return buf
}

func TestPrefetchRemovesStreamingMisses(t *testing.T) {
	buf := streamingTrace()
	lp := leap.New(nil, 0)
	buf.Replay(lp)
	profile := lp.Profile("stream")
	recs, o := profiler.TranslateTrace(buf.Events, nil)

	plan, res := EvaluateProfile(recs, o, profile, cachesim.L1D)
	if _, ok := plan[1]; !ok {
		t.Fatalf("instruction 1 not planned: %v", plan.Instrs())
	}
	// The 4096-line array doesn't fit a 512-line L1: both passes miss
	// every line without prefetching.
	if res.Baseline.Misses < 8000 {
		t.Fatalf("baseline misses = %d, expected streaming misses", res.Baseline.Misses)
	}
	if red := res.MissReduction(); red < 90 {
		t.Errorf("prefetching removed only %.1f%% of misses (%d -> %d)",
			red, res.Baseline.Misses, res.Prefetched.Misses)
	}
	if acc := res.Accuracy(); acc < 0.9 {
		t.Errorf("prefetch accuracy = %.2f", acc)
	}
}

func TestPlanSkipsSmallStrides(t *testing.T) {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	arr := m.Alloc(1, 4096)
	for i := 0; i < 512; i++ {
		m.Load(1, arr+trace.Addr(i), 1) // stride 1: stays in-line for 64 iters
	}
	m.Free(arr)
	m.End()
	lp := leap.New(nil, 0)
	buf.Replay(lp)
	plan := BuildPlan(lp.Profile("tiny"), 64, 16)
	if len(plan) != 0 {
		t.Errorf("stride-1 lookahead-16 should not be planned (16 < one line): %v", plan.Instrs())
	}
	// With a longer lookahead it becomes worth planning.
	plan = BuildPlan(lp.Profile("tiny"), 64, 128)
	if _, ok := plan[1]; !ok {
		t.Errorf("stride-1 lookahead-128 should be planned")
	}
}

func TestPrefetchOnBenchmark(t *testing.T) {
	// On vpr (strided sweeps over cells/bboxes), LEAP-directed prefetching
	// must not increase demand misses and should remove a visible share.
	prog, err := workloads.New("175.vpr", workloads.Config{Scale: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	memsim.Run(prog, buf)
	lp := leap.New(nil, 0)
	buf.Replay(lp)
	recs, o := profiler.TranslateTrace(buf.Events, nil)

	_, res := EvaluateProfile(recs, o, lp.Profile("vpr"), cachesim.L1D)
	if res.Prefetched.Misses > res.Baseline.Misses {
		t.Errorf("prefetching increased misses: %d -> %d", res.Baseline.Misses, res.Prefetched.Misses)
	}
	t.Logf("vpr: %d -> %d demand misses (%.1f%% reduction, %.0f%% accuracy, %d issued)",
		res.Baseline.Misses, res.Prefetched.Misses, res.MissReduction(), 100*res.Accuracy(), res.Issued)
}

func TestResultZeroSafety(t *testing.T) {
	var r Result
	if r.MissReduction() != 0 || r.Accuracy() != 0 {
		t.Error("zero result should report zeros")
	}
}
