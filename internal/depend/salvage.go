package depend

import (
	"context"

	"ormprof/internal/trace"
)

// IdealFromSourceSalvage is the fault-tolerant IdealFromSource: the
// profiler built from the events delivered before any fault is returned
// alongside the typed error, instead of being discarded.
func IdealFromSourceSalvage(ctx context.Context, src trace.Source) (*Ideal, error) {
	p := NewIdeal()
	_, err := trace.DrainSalvage(ctx, src, p)
	return p, err
}

// ConnorsFromSourceSalvage is the fault-tolerant ConnorsFromSource,
// mirroring IdealFromSourceSalvage.
func ConnorsFromSourceSalvage(ctx context.Context, src trace.Source, window int) (*Connors, error) {
	p := NewConnors(window)
	_, err := trace.DrainSalvage(ctx, src, p)
	return p, err
}
