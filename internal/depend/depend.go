// Package depend implements memory dependence frequency (MDF) profiling —
// the paper's first LEAP application (§4.2.1) — together with the two
// baselines it is evaluated against:
//
//   - Ideal: a lossless raw-address profiler that records the dependence
//     information of all memory operations (the paper's ground truth, which
//     is "extremely slow and produces huge profiles");
//   - Connors: a re-implementation of the instruction-indexed windowed
//     dependence profiler of Connors' thesis, which searches for address
//     matches only within a bounded history window of recent stores.
//
// A (st, ld) instruction pair conflicts when an execution of st writes a
// location that an execution of ld later reads. The memory dependence
// frequency is
//
//	MDF(st, ld) = (# of ld executions that conflict with st) / (total # of ld executions)
package depend

import (
	"ormprof/internal/trace"
)

// Pair is a static (store instruction, load instruction) pair.
type Pair struct {
	St, Ld trace.InstrID
}

// Result is a dependence profile: per-pair conflict counts plus per-load
// execution totals, from which MDFs are computed.
type Result struct {
	// Conflicts counts, for each pair, the load executions that conflicted
	// with at least one earlier execution of the store instruction.
	Conflicts map[Pair]uint64
	// LoadExecs counts total executions per load instruction.
	LoadExecs map[trace.InstrID]uint64
}

// NewResult returns an empty result.
func NewResult() *Result {
	return &Result{
		Conflicts: make(map[Pair]uint64),
		LoadExecs: make(map[trace.InstrID]uint64),
	}
}

// MDF computes the dependence frequency for every conflicting pair, clamped
// to [0, 1].
func (r *Result) MDF() map[Pair]float64 {
	out := make(map[Pair]float64, len(r.Conflicts))
	for p, c := range r.Conflicts {
		execs := r.LoadExecs[p.Ld]
		if execs == 0 {
			continue
		}
		f := float64(c) / float64(execs)
		if f > 1 {
			f = 1
		}
		if f > 0 {
			out[p] = f
		}
	}
	return out
}

// Ideal is the lossless raw-address dependence profiler. For every address
// it remembers which store instructions have written it; every load
// execution then conflicts with each of those instructions. It is a
// trace.Sink.
type Ideal struct {
	res *Result
	// writers maps each address to the set of store instructions that have
	// written it so far.
	writers map[trace.Addr]map[trace.InstrID]struct{}
}

// IdealFromSource drains a streaming event source through a fresh ideal
// profiler and returns it.
func IdealFromSource(src trace.Source) (*Ideal, error) {
	p := NewIdeal()
	if _, err := trace.Drain(src, p); err != nil {
		return nil, err
	}
	return p, nil
}

// ConnorsFromSource drains a streaming event source through a fresh
// windowed profiler with the given history length (≤ 0 = DefaultWindow).
func ConnorsFromSource(src trace.Source, window int) (*Connors, error) {
	p := NewConnors(window)
	if _, err := trace.Drain(src, p); err != nil {
		return nil, err
	}
	return p, nil
}

// NewIdeal returns an empty ideal profiler.
func NewIdeal() *Ideal {
	return &Ideal{
		res:     NewResult(),
		writers: make(map[trace.Addr]map[trace.InstrID]struct{}),
	}
}

// Emit implements trace.Sink.
func (i *Ideal) Emit(e trace.Event) {
	if e.Kind != trace.EvAccess {
		return
	}
	if e.Store {
		w := i.writers[e.Addr]
		if w == nil {
			w = make(map[trace.InstrID]struct{}, 1)
			i.writers[e.Addr] = w
		}
		w[e.Instr] = struct{}{}
		return
	}
	i.res.LoadExecs[e.Instr]++
	for st := range i.writers[e.Addr] {
		i.res.Conflicts[Pair{St: st, Ld: e.Instr}]++
	}
}

// Result returns the collected dependence profile.
func (i *Ideal) Result() *Result { return i.res }

// DefaultWindow is the Connors profiler's default store-history length,
// sized (as the paper did) so its running time is comparable to LEAP's.
const DefaultWindow = 1024

// Connors is the windowed raw-address dependence profiler: it records the
// last W stores and, for each load, reports conflicts only against store
// executions still inside the window. It never overestimates an MDF but
// misses dependences whose distance exceeds the window. It is a trace.Sink.
type Connors struct {
	res    *Result
	window int

	ring []struct {
		addr  trace.Addr
		instr trace.InstrID
	}
	head int
	full bool
	// inWindow counts, per address, the store instructions currently in
	// the window (multiset, so eviction is exact).
	inWindow map[trace.Addr]map[trace.InstrID]int
}

// NewConnors returns a windowed profiler with the given history length
// (≤ 0 selects DefaultWindow).
func NewConnors(window int) *Connors {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Connors{
		res:    NewResult(),
		window: window,
		ring: make([]struct {
			addr  trace.Addr
			instr trace.InstrID
		}, window),
		inWindow: make(map[trace.Addr]map[trace.InstrID]int),
	}
}

// Emit implements trace.Sink.
func (c *Connors) Emit(e trace.Event) {
	if e.Kind != trace.EvAccess {
		return
	}
	if e.Store {
		if c.full {
			old := c.ring[c.head]
			set := c.inWindow[old.addr]
			set[old.instr]--
			if set[old.instr] == 0 {
				delete(set, old.instr)
				if len(set) == 0 {
					delete(c.inWindow, old.addr)
				}
			}
		}
		c.ring[c.head] = struct {
			addr  trace.Addr
			instr trace.InstrID
		}{e.Addr, e.Instr}
		c.head++
		if c.head == c.window {
			c.head = 0
			c.full = true
		}
		set := c.inWindow[e.Addr]
		if set == nil {
			set = make(map[trace.InstrID]int, 1)
			c.inWindow[e.Addr] = set
		}
		set[e.Instr]++
		return
	}
	c.res.LoadExecs[e.Instr]++
	for st := range c.inWindow[e.Addr] {
		c.res.Conflicts[Pair{St: st, Ld: e.Instr}]++
	}
}

// Result returns the collected dependence profile.
func (c *Connors) Result() *Result { return c.res }
