package depend

import (
	"math"
	"math/rand"
	"testing"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// TestLEAPEqualsIdealWhenExact is the end-to-end equivalence property for
// the whole dependence stack (OMC translation → LMAD compression → omega
// solving): when (a) no stream overflows its LMAD budget (so LEAP is
// lossless) and (b) the allocator never reuses addresses (so raw-address and
// object-relative dependence semantics coincide), LEAP's MDFs must equal the
// ideal profiler's MDFs exactly, on randomly generated programs.
func TestLEAPEqualsIdealWhenExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		buf := &trace.Buffer{}
		m := memsim.New(buf, memsim.WithAllocator(memsim.NewBumpAllocator()))
		m.Start()

		// A few arrays accessed by random strided loops. Strided-only
		// accesses keep every stream inside the LMAD budget.
		nArrays := 1 + rng.Intn(3)
		arrays := make([]trace.Addr, nArrays)
		for i := range arrays {
			arrays[i] = m.Alloc(trace.SiteID(i+1), 512)
		}
		nLoops := 2 + rng.Intn(5)
		for loop := 0; loop < nLoops; loop++ {
			instr := trace.InstrID(1 + rng.Intn(8))
			arr := arrays[rng.Intn(nArrays)]
			start := rng.Intn(8) * 8
			stride := (1 + rng.Intn(4)) * 8
			count := 1 + rng.Intn(20)
			store := rng.Intn(2) == 0
			for k := 0; k < count; k++ {
				off := start + k*stride
				if off >= 512 {
					break
				}
				if store {
					m.Store(instr, arr+trace.Addr(off), 8)
				} else {
					m.Load(instr, arr+trace.Addr(off), 8)
				}
			}
		}
		for _, a := range arrays {
			m.Free(a)
		}
		m.End()

		// Instructions must be consistently loads or stores for LEAP's
		// per-instruction bookkeeping; regenerate trials that mixed them.
		kinds := make(map[trace.InstrID]bool)
		mixed := false
		for _, e := range buf.Accesses() {
			if prev, ok := kinds[e.Instr]; ok && prev != e.Store {
				mixed = true
				break
			}
			kinds[e.Instr] = e.Store
		}
		if mixed {
			continue
		}

		ideal := NewIdeal()
		buf.Replay(ideal)

		lp := leap.New(nil, 0)
		buf.Replay(lp)
		profile := lp.Profile("random")

		// Precondition (a): nothing overflowed.
		overflowed := false
		for _, s := range profile.Streams {
			if s.Overflowed {
				overflowed = true
			}
		}
		if overflowed {
			continue
		}

		im := ideal.Result().MDF()
		lm := FromLEAP(profile).MDF()

		if len(im) != len(lm) {
			t.Fatalf("trial %d: pair sets differ: ideal %d, LEAP %d\nideal: %v\nleap:  %v",
				trial, len(im), len(lm), im, lm)
		}
		for p, iv := range im {
			lv, ok := lm[p]
			if !ok {
				t.Fatalf("trial %d: LEAP missed pair %v (ideal MDF %v)", trial, p, iv)
			}
			if math.Abs(lv-iv) > 1e-12 {
				t.Fatalf("trial %d: pair %v MDF: LEAP %v, ideal %v", trial, p, lv, iv)
			}
		}
	}
}

// TestLEAPNeverOverestimatesPairExistence: in object-relative space, a
// dependence found by LEAP's exact LMAD intersection always exists in raw
// space (same object ⇒ same address during its lifetime), so pairs whose
// store stream did not overflow must never be invented. (Overflowed store
// streams use the coarse summary estimate, which may over-approximate —
// the paper's Figure 6 positive tail.)
func TestLEAPNeverOverestimatesPairExistence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		buf := &trace.Buffer{}
		m := memsim.New(buf) // default free-list allocator: reuse happens
		m.Start()
		live := []trace.Addr{}
		for op := 0; op < 3000; op++ {
			switch {
			case len(live) == 0 || rng.Intn(10) == 0:
				live = append(live, m.Alloc(trace.SiteID(1+rng.Intn(3)), uint32(32+rng.Intn(3)*32)))
			case rng.Intn(20) == 0:
				i := rng.Intn(len(live))
				m.Free(live[i])
				live = append(live[:i], live[i+1:]...)
			default:
				a := live[rng.Intn(len(live))]
				off := trace.Addr(rng.Intn(4) * 8)
				// Even instruction IDs store, odd load, so kinds stay
				// consistent.
				id := trace.InstrID(1 + rng.Intn(8))
				if id%2 == 0 {
					m.Store(id, a+off, 8)
				} else {
					m.Load(id, a+off, 8)
				}
			}
		}
		for _, a := range live {
			m.Free(a)
		}
		m.End()

		ideal := NewIdeal()
		buf.Replay(ideal)
		im := ideal.Result().MDF()

		lp := leap.New(nil, 0)
		buf.Replay(lp)
		profile := lp.Profile("churn")
		lm := FromLEAP(profile).MDF()

		overflowedStores := make(map[trace.InstrID]bool)
		for _, s := range profile.Streams {
			if s.Store && s.Overflowed {
				overflowedStores[s.Key.Instr] = true
			}
		}
		for p := range lm {
			if overflowedStores[p.St] {
				continue // summary estimates may over-approximate
			}
			if _, ok := im[p]; !ok {
				t.Fatalf("trial %d: LEAP invented pair %v", trial, p)
			}
		}
	}
}
