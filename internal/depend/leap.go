package depend

import (
	"math"

	"ormprof/internal/decomp"
	"ormprof/internal/leap"
	"ormprof/internal/lmad"
	"ormprof/internal/omega"
)

// FromLEAP runs the paper's dependence detection post-process over a LEAP
// profile: for every (store stream, load stream) pair within the same group,
// it counts location conflicts by solving the LMAD intersection equations
//
//	start₁ + stride₁·k₁ = start₂ + stride₂·k₂   (object and offset dims)
//	time₁(k₁) < time₂(k₂)                        (read after write)
//	0 ≤ k₁ < count₁,  0 ≤ k₂ < count₂
//
// with omega-test-like linear Diophantine analysis (§4.2.1). A load
// execution is counted once per store instruction; because the same load
// execution can match several LMADs of one store instruction, totals are
// clamped to the load's execution count.
func FromLEAP(p *leap.Profile) *Result {
	res := NewResult()
	// Denominators are the load executions *within the captured sample*:
	// an overflowed stream's LMADs cover only its initial part (§4.1), so
	// the within-sample frequency is the consistent MDF estimator — the
	// numerator can only see captured conflicts, and dividing by total
	// executions would bias every overflowed pair toward zero.
	for _, s := range p.Streams {
		if !s.Store {
			res.LoadExecs[s.Key.Instr] += s.Captured
		}
	}

	// Bucket streams by group.
	type bucket struct {
		stores, loads []*leap.Stream
	}
	groups := make(map[decomp.InstrGroupKey]*bucket) // keyed by {0, group}
	for _, k := range p.Keys() {
		s := p.Streams[k]
		gk := decomp.InstrGroupKey{Group: k.Group}
		b := groups[gk]
		if b == nil {
			b = &bucket{}
			groups[gk] = b
		}
		if s.Store {
			b.stores = append(b.stores, s)
		} else {
			b.loads = append(b.loads, s)
		}
	}

	for _, gk := range decomp.SortedKeys(groups) {
		b := groups[gk]
		// Within a group, several streams can belong to the same store
		// instruction (it cannot here — streams are keyed by instruction —
		// but one stream holds many LMADs). A load iteration that matches
		// several LMADs of the same store instruction must count once, so
		// conflicts are the size of the union of the per-LMAD solution
		// sets.
		for _, st := range b.stores {
			for _, ld := range b.loads {
				pair := Pair{St: st.Key.Instr, Ld: ld.Key.Instr}
				if st.Overflowed {
					// The store stream degraded to a summary (§4.1): its
					// LMADs are only the initial sample, so exact
					// intersection would miss almost everything. Estimate
					// instead from the summary's bounding box, scaled by
					// the expected location coverage of the stream's
					// writes — this can over- or under-shoot, which is
					// where the two-sided error tails of Figure 6 come
					// from.
					est := 0.0
					for j := range ld.LMADs {
						est += summaryConflicts(st, &ld.LMADs[j])
					}
					if c := uint64(est + 0.5); c > 0 {
						res.Conflicts[pair] += c
					}
					continue
				}
				for j := range ld.LMADs {
					sets := make([]ap, 0, len(st.LMADs))
					for i := range st.LMADs {
						if s := conflictingSet(&st.LMADs[i], &ld.LMADs[j]); s.n > 0 {
							sets = append(sets, s)
						}
					}
					conflicts := unionSize(sets, uint64(ld.LMADs[j].Count))
					if conflicts == 0 {
						continue
					}
					res.Conflicts[pair] += conflicts
				}
			}
		}
	}

	// Clamp: a pair's conflicts cannot exceed the load's execution count.
	for pair, c := range res.Conflicts {
		if execs := res.LoadExecs[pair.Ld]; c > execs {
			res.Conflicts[pair] = execs
		}
	}
	return res
}

// summaryConflicts estimates how many iterations of the load LMAD conflict
// with an overflowed store stream, from the store's min/max/granularity
// summary: the load iterations whose (object, offset) falls inside the
// store's bounding box after the store's first summarized write, scaled by
// the probability that any particular box location was actually written
// (1 - e^(-writes/locations), the uniform-coverage model).
func summaryConflicts(st *leap.Stream, ld *lmad.LMAD) float64 {
	s := &st.Summary
	if s.Min == nil || ld.Count == 0 {
		return 0
	}
	// The box must cover the whole store stream: the summary describes only
	// the discarded tail, so fold in the captured descriptors (which hold
	// the stream's earliest writes — without them the time filter would
	// reject every load that ran before the overflow point).
	minD := func(d int) int64 { return s.Min[d] }
	maxD := func(d int) int64 { return s.Max[d] }
	lo := [leap.NumDims]int64{minD(0), minD(1), minD(2)}
	hi := [leap.NumDims]int64{maxD(0), maxD(1), maxD(2)}
	for i := range st.LMADs {
		l := &st.LMADs[i]
		for d := 0; d < leap.NumDims; d++ {
			a, b := l.Start[d], l.At(l.Count-1, d)
			if a > b {
				a, b = b, a
			}
			if a < lo[d] {
				lo[d] = a
			}
			if b > hi[d] {
				hi[d] = b
			}
		}
	}
	span := func(d int) float64 {
		if hi[d] == lo[d] {
			return 1
		}
		g := s.Granularity[d]
		if g <= 0 {
			g = 1
		}
		return float64(hi[d]-lo[d])/float64(g) + 1
	}
	locations := span(leap.DimObject) * span(leap.DimOffset)
	writes := float64(st.Offered)
	coverage := 1 - math.Exp(-writes/locations)

	// Load iterations k with object/offset inside the box and time after
	// the stream's earliest write.
	iv := omega.Bounded(0, int64(ld.Count)-1)
	box := func(d int) {
		iv = iv.Intersect(omega.LinearGE(ld.Stride[d], ld.Start[d]-lo[d]))
		iv = iv.Intersect(omega.LinearGE(-ld.Stride[d], hi[d]-ld.Start[d]))
	}
	box(leap.DimObject)
	box(leap.DimOffset)
	iv = iv.Intersect(omega.LinearGE(ld.Stride[leap.DimTime], ld.Start[leap.DimTime]-lo[leap.DimTime]-1))
	if iv.Empty {
		return 0
	}

	// Alignment: the store only touches locations on its granularity
	// lattice, so load iterations must satisfy
	// start_d + stride_d·k ≡ lo_d (mod g_d) in the object and offset dims —
	// without this, a store striding one field of a record would be charged
	// with conflicts against loads of every other field in its box.
	residue, modulus := int64(0), int64(1)
	for _, d := range [2]int{leap.DimObject, leap.DimOffset} {
		g := s.Granularity[d]
		if hi[d] == lo[d] || g <= 1 {
			continue // single location or dense lattice: no constraint
		}
		r, m, ok := solveCongruence(ld.Stride[d], lo[d]-ld.Start[d], g)
		if !ok {
			return 0
		}
		if residue, modulus, ok = crt(residue, modulus, r, m); !ok {
			return 0
		}
	}
	n, ok := iv.Count()
	if !ok || n == 0 {
		return 0
	}
	if modulus > 1 {
		n = countCongruent(iv.Lo, iv.Hi, residue, modulus)
	}
	return coverage * float64(n)
}

// solveCongruence solves a·k ≡ b (mod m), m ≥ 1, returning the residue
// class k ≡ r (mod mm). ok is false when there is no solution.
func solveCongruence(a, b, m int64) (r, mm int64, ok bool) {
	a = ((a % m) + m) % m
	b = ((b % m) + m) % m
	if a == 0 {
		if b == 0 {
			return 0, 1, true // every k
		}
		return 0, 0, false
	}
	g, inv, _ := omega.ExtGCD(a, m)
	if b%g != 0 {
		return 0, 0, false
	}
	mm = m / g
	r = ((b / g % mm) * ((inv%mm + mm) % mm)) % mm
	return r, mm, true
}

// crt combines k ≡ r1 (mod m1) with k ≡ r2 (mod m2).
func crt(r1, m1, r2, m2 int64) (r, m int64, ok bool) {
	g, p, _ := omega.ExtGCD(m1, m2)
	if (r2-r1)%g != 0 {
		return 0, 0, false
	}
	lcm := m1 / g * m2
	diff := (r2 - r1) / g % (m2 / g)
	r = r1 + m1*((diff*(p%(m2/g)))%(m2/g))
	r = ((r % lcm) + lcm) % lcm
	return r, lcm, true
}

// countCongruent counts k in [lo, hi] with k ≡ r (mod m), m ≥ 1.
func countCongruent(lo, hi, r, m int64) uint64 {
	if lo > hi {
		return 0
	}
	// First k ≥ lo in the class.
	first := lo + ((r-lo)%m+m)%m
	if first > hi {
		return 0
	}
	return uint64((hi-first)/m) + 1
}

// ap is an arithmetic progression of load iterations:
// {first + step·i : 0 ≤ i < n}, step ≥ 1.
type ap struct {
	first, step int64
	n           uint64
}

// unionExactLimit bounds enumeration when computing exact unions; beyond it
// the union degrades to a clamped sum (the sets are then so large that the
// pair saturates anyway).
const unionExactLimit = 1 << 16

// unionSize returns |⋃ sets|, exactly when the total is small enough to
// enumerate, clamped otherwise.
func unionSize(sets []ap, clamp uint64) uint64 {
	switch len(sets) {
	case 0:
		return 0
	case 1:
		if sets[0].n > clamp {
			return clamp
		}
		return sets[0].n
	}
	var total uint64
	for _, s := range sets {
		total += s.n
	}
	if total <= unionExactLimit {
		seen := make(map[int64]struct{}, total)
		for _, s := range sets {
			v := s.first
			for i := uint64(0); i < s.n; i++ {
				seen[v] = struct{}{}
				v += s.step
			}
		}
		total = uint64(len(seen))
	}
	if total > clamp {
		return clamp
	}
	return total
}

// ConflictingLoads counts the distinct load iterations k₂ of LMAD ld for
// which some store iteration k₁ of LMAD st touches the same (object, offset)
// location strictly earlier in time. Both LMADs must be LEAP 3-dimensional
// descriptors (object, offset, time).
func ConflictingLoads(st, ld *lmad.LMAD) uint64 {
	return conflictingSet(st, ld).n
}

// conflictingSet returns the conflicting load iterations as an arithmetic
// progression (every solution family the omega machinery produces is one).
func conflictingSet(st, ld *lmad.LMAD) ap {
	n1 := int64(st.Count)
	n2 := int64(ld.Count)
	if n1 == 0 || n2 == 0 {
		return ap{}
	}

	// Location equations, one per dimension:
	// st.Start[d] + st.Stride[d]·k₁ = ld.Start[d] + ld.Stride[d]·k₂
	// ⇔ a·k₁ + b·k₂ = c  with  a = st.Stride[d], b = -ld.Stride[d],
	//                          c = ld.Start[d] - st.Start[d].
	eq := func(d int) (a, b, c int64) {
		return st.Stride[d], -ld.Stride[d], ld.Start[d] - st.Start[d]
	}
	aO, bO, cO := eq(leap.DimObject)
	aF, bF, cF := eq(leap.DimOffset)

	sO := omega.Solve(aO, bO, cO)
	if sO.Kind == omega.None {
		return ap{}
	}
	sF := omega.Solve(aF, bF, cF)
	if sF.Kind == omega.None {
		return ap{}
	}

	tsA, dtA := st.Start[leap.DimTime], st.Stride[leap.DimTime]
	tsB, dtB := ld.Start[leap.DimTime], ld.Stride[leap.DimTime]

	switch {
	case sO.Kind == omega.All && sF.Kind == omega.All:
		// Both LMADs sit at one fixed location. A load iteration k₂
		// conflicts iff some store iteration precedes it; the earliest
		// store time suffices.
		minTA := tsA
		if dtA < 0 {
			minTA = tsA + dtA*(n1-1)
		}
		// Count k₂ ∈ [0, n2) with tsB + dtB·k₂ > minTA,
		// i.e. dtB·k₂ + (tsB - minTA - 1) ≥ 0.
		iv := omega.LinearGE(dtB, tsB-minTA-1).Intersect(omega.Bounded(0, n2-1))
		n, ok := iv.Count()
		if !ok || n == 0 {
			return ap{}
		}
		return ap{first: iv.Lo, step: 1, n: n}

	case sO.Kind == omega.All:
		return lineConflicts(sF.Line, n1, n2, tsA, dtA, tsB, dtB)

	case sF.Kind == omega.All:
		return lineConflicts(sO.Line, n1, n2, tsA, dtA, tsB, dtB)

	default:
		// Intersect the two solution lines.
		kind, t0 := omega.IntersectLine(sO.Line, aF, bF, cF)
		switch kind {
		case omega.None:
			return ap{}
		case omega.All:
			return lineConflicts(sO.Line, n1, n2, tsA, dtA, tsB, dtB)
		default:
			k1, k2 := sO.Line.At(t0)
			if k1 < 0 || k1 >= n1 || k2 < 0 || k2 >= n2 {
				return ap{}
			}
			if tsA+dtA*k1 < tsB+dtB*k2 {
				return ap{first: k2, step: 1, n: 1}
			}
			return ap{}
		}
	}
}

// lineConflicts returns the distinct k₂ along the solution line
// (k₁, k₂) = (X0 + Dx·t, Y0 + Dy·t) subject to the iteration bounds and the
// read-after-write time constraint, as an arithmetic progression.
func lineConflicts(l omega.Line, n1, n2, tsA, dtA, tsB, dtB int64) ap {
	iv := omega.AllInts()
	// 0 ≤ k₁ ⇔ Dx·t + X0 ≥ 0;  k₁ ≤ n1-1 ⇔ -Dx·t + (n1-1-X0) ≥ 0.
	iv = iv.Intersect(omega.LinearGE(l.Dx, l.X0))
	iv = iv.Intersect(omega.LinearGE(-l.Dx, n1-1-l.X0))
	iv = iv.Intersect(omega.LinearGE(l.Dy, l.Y0))
	iv = iv.Intersect(omega.LinearGE(-l.Dy, n2-1-l.Y0))
	// Time: tsA + dtA·k₁ < tsB + dtB·k₂
	// ⇔ (dtA·Dx - dtB·Dy)·t + (tsA + dtA·X0 - tsB - dtB·Y0) < 0.
	iv = iv.Intersect(omega.LinearLT(dtA*l.Dx-dtB*l.Dy, tsA+dtA*l.X0-tsB-dtB*l.Y0))

	if iv.Empty {
		return ap{}
	}
	if l.Dy == 0 {
		// k₂ is constant along the line: one conflicting load iteration.
		return ap{first: l.Y0, step: 1, n: 1}
	}
	n, ok := iv.Count()
	if !ok || n == 0 {
		// Unbounded can only happen for Dx == 0 && Dy == 0, which Solve
		// never produces; guard anyway.
		return ap{}
	}
	// Normalize direction so step > 0.
	if l.Dy > 0 {
		return ap{first: l.Y0 + l.Dy*iv.Lo, step: l.Dy, n: n}
	}
	return ap{first: l.Y0 + l.Dy*iv.Hi, step: -l.Dy, n: n}
}

// CountMatrix summarizes per-pair MDFs into a deterministic list for
// reporting: pairs sorted by (st, ld).
type CountMatrix struct {
	Pairs []Pair
	Vals  []float64
}

// SortedMDF flattens an MDF map deterministically.
func SortedMDF(m map[Pair]float64) CountMatrix {
	cm := CountMatrix{Pairs: make([]Pair, 0, len(m))}
	for p := range m {
		cm.Pairs = append(cm.Pairs, p)
	}
	for i := 1; i < len(cm.Pairs); i++ {
		for j := i; j > 0 && lessPair(cm.Pairs[j], cm.Pairs[j-1]); j-- {
			cm.Pairs[j], cm.Pairs[j-1] = cm.Pairs[j-1], cm.Pairs[j]
		}
	}
	cm.Vals = make([]float64, len(cm.Pairs))
	for i, p := range cm.Pairs {
		cm.Vals[i] = m[p]
	}
	return cm
}

func lessPair(a, b Pair) bool {
	if a.St != b.St {
		return a.St < b.St
	}
	return a.Ld < b.Ld
}
