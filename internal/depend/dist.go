package depend

import "math"

// NumBins is the number of error-distribution buckets: errors from -100 % to
// +100 % in 10-point steps, as in the paper's Figures 6-8.
const NumBins = 21

// ErrorDist is the error distribution of an estimated dependence profile
// against the ideal one. Bin i holds the fraction of dependent pairs whose
// MDF error, est − ideal in percentage points, rounds to (i−10)·10. The
// center bin (index 10) is "completely correct".
type ErrorDist struct {
	Bins  [NumBins]float64
	Pairs int // dependent pairs considered
}

// BinError returns the error value (in percentage points) that bin i
// represents.
func BinError(i int) int { return (i - 10) * 10 }

// Distribution compares an estimated profile against the ideal one over the
// union of their dependent pairs (a pair missed entirely by the estimator
// lands at −ideal; an invented pair at +est).
func Distribution(ideal, est *Result) ErrorDist {
	im := ideal.MDF()
	em := est.MDF()
	var d ErrorDist
	universe := make(map[Pair]struct{}, len(im)+len(em))
	for p := range im {
		universe[p] = struct{}{}
	}
	for p := range em {
		universe[p] = struct{}{}
	}
	if len(universe) == 0 {
		return d
	}
	for p := range universe {
		errPts := (em[p] - im[p]) * 100
		bin := int(math.Round(errPts/10)) + 10
		if bin < 0 {
			bin = 0
		}
		if bin >= NumBins {
			bin = NumBins - 1
		}
		d.Bins[bin]++
		d.Pairs++
	}
	for i := range d.Bins {
		d.Bins[i] /= float64(d.Pairs)
	}
	return d
}

// WithinTen reports the paper's headline number: the fraction of pairs that
// are completely correct or off by no more than 10 % (the center bin plus
// its two neighbours).
func (d ErrorDist) WithinTen() float64 {
	return d.Bins[9] + d.Bins[10] + d.Bins[11]
}

// Exact reports the fraction of pairs in the center (zero-error) bin.
func (d ErrorDist) Exact() float64 { return d.Bins[10] }

// Average computes the across-benchmark average distribution (Figure 8
// averages the per-benchmark distributions, weighting each benchmark
// equally). Distributions with zero pairs are skipped.
func Average(dists ...ErrorDist) ErrorDist {
	var out ErrorDist
	n := 0
	for _, d := range dists {
		if d.Pairs == 0 {
			continue
		}
		for i, v := range d.Bins {
			out.Bins[i] += v
		}
		out.Pairs += d.Pairs
		n++
	}
	if n == 0 {
		return out
	}
	for i := range out.Bins {
		out.Bins[i] /= float64(n)
	}
	return out
}
