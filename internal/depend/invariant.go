package depend

import (
	"sort"

	"ormprof/internal/decomp"
	"ormprof/internal/leap"
	"ormprof/internal/lmad"
	"ormprof/internal/omega"
	"ormprof/internal/trace"
)

// Loop-invariant load removal is the second §4 optimization named alongside
// speculative load reordering: a load that keeps reading the same location
// can be hoisted out of its loop and kept in a register — provided no store
// writes that location *between its executions*. A store that ran once
// before the loop (initialization) gives the pair a dependence frequency of
// 100 % yet does not block hoisting, so the analysis checks for interfering
// store executions within the load's execution time span rather than
// thresholding the MDF.

// InvariantCandidate describes one removable load.
type InvariantCandidate struct {
	Instr trace.InstrID
	// Execs is the load's total execution count.
	Execs uint64
	// ConstFrac is the fraction of captured executions that hit a
	// constant (object, offset) location.
	ConstFrac float64
	// Redundant estimates the executions that could be satisfied from a
	// register (repeat visits to constant locations).
	Redundant uint64
}

// LoopInvariant analyses a LEAP profile and returns the loads that are
// candidates for loop-invariant removal: location-constant for at least
// constThreshold (≤ 0 selects 0.9) of their captured executions, with no
// store execution writing any of their locations inside their execution
// span. Results are ordered by estimated redundant executions, descending.
func LoopInvariant(p *leap.Profile, constThreshold float64) []InvariantCandidate {
	if constThreshold <= 0 {
		constThreshold = 0.9
	}

	// Collect store streams per group for interference checks.
	storesByGroup := make(map[decomp.InstrGroupKey][]*leap.Stream)
	for _, k := range p.Keys() {
		s := p.Streams[k]
		if s.Store {
			gk := decomp.InstrGroupKey{Group: k.Group}
			storesByGroup[gk] = append(storesByGroup[gk], s)
		}
	}

	type acc struct {
		captured  uint64
		constPts  uint64
		redundant uint64
		blocked   bool
	}
	byInstr := make(map[trace.InstrID]*acc)

	for _, k := range p.Keys() {
		s := p.Streams[k]
		if s.Store {
			continue
		}
		a := byInstr[k.Instr]
		if a == nil {
			a = &acc{}
			byInstr[k.Instr] = a
		}
		a.captured += s.OffsetCaptured
		stores := storesByGroup[decomp.InstrGroupKey{Group: k.Group}]

		// Constancy comes from the untimed repeat-aware descriptors (which
		// survive overflow); the interference check uses the load's overall
		// execution time span from the timed side.
		tFirst, tLast, spanOK := loadSpan(s)
		for i := range s.OffsetLMADs {
			l := &s.OffsetLMADs[i]
			constant := l.Count == 1 ||
				(l.Stride[leap.DimObject] == 0 && l.Stride[leap.DimOffset] == 0)
			if !constant {
				continue
			}
			pts := l.Points()
			a.constPts += pts
			if pts > 0 {
				a.redundant += pts - 1
			}
			if pts < 2 {
				continue // a single visit cannot be interfered with
			}
			if !spanOK {
				a.blocked = true // no time information: be conservative
				continue
			}
			obj := l.Start[leap.DimObject]
			off := l.Start[leap.DimOffset]
			for _, st := range stores {
				if storeHitsWithin(st, obj, off, tFirst, tLast) {
					a.blocked = true
					break
				}
			}
		}
	}

	var out []InvariantCandidate
	for instr, a := range byInstr {
		if a.captured == 0 || a.blocked {
			continue
		}
		frac := float64(a.constPts) / float64(a.captured)
		if frac < constThreshold {
			continue
		}
		out = append(out, InvariantCandidate{
			Instr:     instr,
			Execs:     p.InstrExecs[instr],
			ConstFrac: frac,
			Redundant: a.redundant,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Redundant != out[j].Redundant {
			return out[i].Redundant > out[j].Redundant
		}
		return out[i].Instr < out[j].Instr
	})
	return out
}

// loadSpan returns the stream's execution time span, covering the timed
// descriptors and (for overflowed streams) the summarized tail.
func loadSpan(s *leap.Stream) (tFirst, tLast int64, ok bool) {
	for i := range s.LMADs {
		l := &s.LMADs[i]
		t0 := l.Start[leap.DimTime]
		t1 := l.At(l.Count-1, leap.DimTime)
		if t1 < t0 {
			t0, t1 = t1, t0
		}
		if !ok {
			tFirst, tLast, ok = t0, t1, true
			continue
		}
		if t0 < tFirst {
			tFirst = t0
		}
		if t1 > tLast {
			tLast = t1
		}
	}
	if s.Overflowed && s.Summary.Min != nil {
		if !ok {
			return s.Summary.Min[leap.DimTime], s.Summary.Max[leap.DimTime], true
		}
		if s.Summary.Min[leap.DimTime] < tFirst {
			tFirst = s.Summary.Min[leap.DimTime]
		}
		if s.Summary.Max[leap.DimTime] > tLast {
			tLast = s.Summary.Max[leap.DimTime]
		}
	}
	return tFirst, tLast, ok
}

// storeHitsWithin reports whether any captured execution of the store
// stream writes (obj, off) at a time strictly inside (tFirst, tLast).
func storeHitsWithin(st *leap.Stream, obj, off, tFirst, tLast int64) bool {
	for i := range st.LMADs {
		if lmadHitsWithin(&st.LMADs[i], obj, off, tFirst, tLast) {
			return true
		}
	}
	// An overflowed store stream has discarded executions; be conservative
	// and treat the summarized region as potentially interfering if its
	// bounding box covers the location and span.
	if st.Overflowed && st.Summary.Min != nil {
		s := &st.Summary
		if s.Min[leap.DimObject] <= obj && obj <= s.Max[leap.DimObject] &&
			s.Min[leap.DimOffset] <= off && off <= s.Max[leap.DimOffset] &&
			s.Min[leap.DimTime] < tLast && s.Max[leap.DimTime] > tFirst {
			return true
		}
	}
	return false
}

// lmadHitsWithin solves, over the single iteration variable k, whether the
// store descriptor touches (obj, off) at a time strictly inside
// (tFirst, tLast).
func lmadHitsWithin(l *lmad.LMAD, obj, off, tFirst, tLast int64) bool {
	iv := omega.Bounded(0, int64(l.Count)-1)

	// Exact location equations: start + stride·k = target has either no
	// integer solution, every k (stride 0, start = target), or exactly one.
	constrain := func(stride, target, start int64) bool {
		if stride == 0 {
			return start == target
		}
		if (target-start)%stride != 0 {
			return false
		}
		k := (target - start) / stride
		iv = iv.Intersect(omega.Bounded(k, k))
		return true
	}
	if !constrain(l.Stride[leap.DimObject], obj, l.Start[leap.DimObject]) {
		return false
	}
	if !constrain(l.Stride[leap.DimOffset], off, l.Start[leap.DimOffset]) {
		return false
	}

	// Time window: tFirst < t(k) < tLast
	// ⇔ dt·k + (ts - tFirst - 1) ≥ 0  and  dt·k + (ts - tLast) < 0.
	ts, dt := l.Start[leap.DimTime], l.Stride[leap.DimTime]
	iv = iv.Intersect(omega.LinearGE(dt, ts-tFirst-1))
	iv = iv.Intersect(omega.LinearLT(dt, ts-tLast))

	n, ok := iv.Count()
	return ok && n > 0
}
