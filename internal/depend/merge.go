package depend

// MergeResults combines dependence results from multiple runs of the same
// program: conflict counts and load execution totals add, so the merged MDF
// for each pair is the execution-weighted average of the per-run MDFs.
//
// This cross-run aggregation is possible only because the pairs are keyed
// by static instruction IDs, which object-relative profiling keeps stable
// across runs; a raw-address profile's dependences cannot be merged (§1).
func MergeResults(results ...*Result) *Result {
	out := NewResult()
	for _, r := range results {
		if r == nil {
			continue
		}
		for p, c := range r.Conflicts {
			out.Conflicts[p] += c
		}
		for id, n := range r.LoadExecs {
			out.LoadExecs[id] += n
		}
	}
	return out
}
