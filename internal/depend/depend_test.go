package depend

import (
	"math"
	"testing"

	"ormprof/internal/trace"
)

func access(instr trace.InstrID, addr trace.Addr, store bool, tm trace.Time) trace.Event {
	return trace.Event{Kind: trace.EvAccess, Instr: instr, Addr: addr, Size: 8, Store: store, Time: tm}
}

func TestIdealBasicRAW(t *testing.T) {
	// st1 writes A; ld2 reads A twice; ld3 reads B (no dependence).
	ideal := NewIdeal()
	ideal.Emit(access(1, 0x100, true, 0))
	ideal.Emit(access(2, 0x100, false, 1))
	ideal.Emit(access(2, 0x100, false, 2))
	ideal.Emit(access(3, 0x200, false, 3))

	res := ideal.Result()
	if res.Conflicts[Pair{St: 1, Ld: 2}] != 2 {
		t.Errorf("conflicts(1,2) = %d", res.Conflicts[Pair{St: 1, Ld: 2}])
	}
	if _, ok := res.Conflicts[Pair{St: 1, Ld: 3}]; ok {
		t.Error("ld3 should not conflict")
	}
	mdf := res.MDF()
	if mdf[Pair{St: 1, Ld: 2}] != 1.0 {
		t.Errorf("MDF(1,2) = %v", mdf[Pair{St: 1, Ld: 2}])
	}
}

func TestIdealOrderMatters(t *testing.T) {
	// A load before the store is not a RAW dependence.
	ideal := NewIdeal()
	ideal.Emit(access(2, 0x100, false, 0))
	ideal.Emit(access(1, 0x100, true, 1))
	if len(ideal.Result().Conflicts) != 0 {
		t.Error("load-before-store counted as dependence")
	}
}

func TestIdealPartialFrequency(t *testing.T) {
	// ld2 executes 4 times; only half its reads hit stored locations.
	ideal := NewIdeal()
	ideal.Emit(access(1, 0x100, true, 0))
	ideal.Emit(access(2, 0x100, false, 1))
	ideal.Emit(access(2, 0x200, false, 2))
	ideal.Emit(access(2, 0x100, false, 3))
	ideal.Emit(access(2, 0x300, false, 4))
	mdf := ideal.Result().MDF()
	if got := mdf[Pair{St: 1, Ld: 2}]; got != 0.5 {
		t.Errorf("MDF = %v, want 0.5", got)
	}
}

func TestIdealMultipleWriters(t *testing.T) {
	// The paper's example shape: ld1 depends on st2 for 10% and st3 for
	// 90% of its executions.
	ideal := NewIdeal()
	now := trace.Time(0)
	for i := 0; i < 10; i++ {
		addr := trace.Addr(0x1000 + i*8)
		if i == 0 {
			ideal.Emit(access(2, addr, true, now))
		} else {
			ideal.Emit(access(3, addr, true, now))
		}
		now++
	}
	for i := 0; i < 10; i++ {
		ideal.Emit(access(1, trace.Addr(0x1000+i*8), false, now))
		now++
	}
	mdf := ideal.Result().MDF()
	if math.Abs(mdf[Pair{St: 2, Ld: 1}]-0.1) > 1e-9 {
		t.Errorf("MDF(st2, ld1) = %v, want 0.1", mdf[Pair{St: 2, Ld: 1}])
	}
	if math.Abs(mdf[Pair{St: 3, Ld: 1}]-0.9) > 1e-9 {
		t.Errorf("MDF(st3, ld1) = %v, want 0.9", mdf[Pair{St: 3, Ld: 1}])
	}
}

func TestConnorsFindsNearMissesFar(t *testing.T) {
	// With a window of 4 stores, a dependence 2 stores back is found but
	// one 10 stores back is missed.
	c := NewConnors(4)
	now := trace.Time(0)
	c.Emit(access(1, 0x100, true, now)) // target store
	now++
	for i := 0; i < 2; i++ {
		c.Emit(access(9, trace.Addr(0x900+i*8), true, now))
		now++
	}
	c.Emit(access(2, 0x100, false, now)) // found: 2 stores in between
	now++
	for i := 0; i < 10; i++ {
		c.Emit(access(9, trace.Addr(0xa00+i*8), true, now))
		now++
	}
	c.Emit(access(3, 0x100, false, now)) // missed: evicted from window

	res := c.Result()
	if res.Conflicts[Pair{St: 1, Ld: 2}] != 1 {
		t.Errorf("near dependence not found: %v", res.Conflicts)
	}
	if _, ok := res.Conflicts[Pair{St: 1, Ld: 3}]; ok {
		t.Error("far dependence should be outside the window")
	}
}

func TestConnorsNeverOverestimates(t *testing.T) {
	// Property from the paper (§4.2.1): for every pair, Connors' MDF is at
	// most the ideal MDF. Drive both with a pseudo-random trace.
	ideal := NewIdeal()
	con := NewConnors(8)
	now := trace.Time(0)
	state := uint64(12345)
	rnd := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < 5000; i++ {
		ev := access(trace.InstrID(1+rnd(6)), trace.Addr(0x1000+rnd(64)*8), rnd(2) == 0, now)
		ideal.Emit(ev)
		con.Emit(ev)
		now++
	}
	im := ideal.Result().MDF()
	cm := con.Result().MDF()
	for p, cv := range cm {
		if iv, ok := im[p]; !ok || cv > iv+1e-9 {
			t.Fatalf("Connors overestimates pair %v: %v > %v", p, cv, im[p])
		}
	}
}

func TestMDFClamp(t *testing.T) {
	r := NewResult()
	r.LoadExecs[2] = 4
	r.Conflicts[Pair{St: 1, Ld: 2}] = 10 // more conflicts than execs
	if got := r.MDF()[Pair{St: 1, Ld: 2}]; got != 1.0 {
		t.Errorf("MDF = %v, want clamped 1.0", got)
	}
	// Zero-exec loads are dropped rather than dividing by zero.
	r2 := NewResult()
	r2.Conflicts[Pair{St: 1, Ld: 3}] = 5
	if len(r2.MDF()) != 0 {
		t.Error("pair with unknown load execs should be dropped")
	}
}

func TestSortedMDF(t *testing.T) {
	m := map[Pair]float64{
		{St: 2, Ld: 1}: 0.5,
		{St: 1, Ld: 2}: 0.25,
		{St: 1, Ld: 1}: 1.0,
	}
	cm := SortedMDF(m)
	want := []Pair{{St: 1, Ld: 1}, {St: 1, Ld: 2}, {St: 2, Ld: 1}}
	for i, p := range want {
		if cm.Pairs[i] != p {
			t.Fatalf("order[%d] = %v, want %v", i, cm.Pairs[i], p)
		}
		if cm.Vals[i] != m[p] {
			t.Fatalf("value[%d] = %v", i, cm.Vals[i])
		}
	}
}

func TestMergeResults(t *testing.T) {
	a := NewResult()
	a.LoadExecs[1] = 100
	a.Conflicts[Pair{St: 9, Ld: 1}] = 50
	b := NewResult()
	b.LoadExecs[1] = 100
	b.Conflicts[Pair{St: 9, Ld: 1}] = 100
	b.LoadExecs[2] = 10
	b.Conflicts[Pair{St: 9, Ld: 2}] = 10

	m := MergeResults(a, nil, b)
	mdf := m.MDF()
	// Execution-weighted average: (50+100)/(100+100) = 0.75.
	if got := mdf[Pair{St: 9, Ld: 1}]; got != 0.75 {
		t.Errorf("merged MDF = %v, want 0.75", got)
	}
	if got := mdf[Pair{St: 9, Ld: 2}]; got != 1.0 {
		t.Errorf("pair only in one run: MDF = %v", got)
	}
}
