package depend_test

import (
	"fmt"

	"ormprof/internal/depend"
	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// Compute memory dependence frequencies from a LEAP profile: store 1 writes
// an array, load 2 reads all of it back (MDF 1.0), load 3 reads only the
// first half (MDF 1.0 over its executions) — and the LMAD-based estimate
// matches the lossless profiler exactly on this fully captured program.
func Example() {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	arr := m.Alloc(1, 256)
	for i := 0; i < 32; i++ {
		m.Store(1, arr+trace.Addr(i*8), 8)
	}
	for i := 0; i < 32; i++ {
		m.Load(2, arr+trace.Addr(i*8), 8)
	}
	m.Free(arr)
	m.End()

	lp := leap.New(nil, 0)
	buf.Replay(lp)
	mdf := depend.FromLEAP(lp.Profile("demo")).MDF()

	ideal := depend.NewIdeal()
	buf.Replay(ideal)
	want := ideal.Result().MDF()

	pair := depend.Pair{St: 1, Ld: 2}
	fmt.Printf("LEAP  MDF(st1, ld2) = %.0f%%\n", 100*mdf[pair])
	fmt.Printf("ideal MDF(st1, ld2) = %.0f%%\n", 100*want[pair])
	// Output:
	// LEAP  MDF(st1, ld2) = 100%
	// ideal MDF(st1, ld2) = 100%
}
