package depend

import (
	"testing"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

func TestLoopInvariant(t *testing.T) {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	arr := m.Alloc(1, 512)
	cfgObj := m.Alloc(2, 64)

	// Load 1: reads the same config word every iteration, never stored to
	// after init — a removable loop-invariant load.
	// Load 2: strided sweep — not invariant.
	// Load 3: constant location, but store 4 rewrites it each iteration —
	// invariant in location, NOT removable.
	m.Store(5, cfgObj, 8) // one-time init store
	for i := 0; i < 200; i++ {
		m.Load(1, cfgObj, 8)
		m.Load(2, arr+trace.Addr(i%64*8), 8)
		m.Store(4, arr+8, 8)
		m.Load(3, arr+8, 8)
	}
	m.Free(cfgObj)
	m.Free(arr)
	m.End()

	lp := leap.New(nil, 0)
	buf.Replay(lp)
	profile := lp.Profile("inv")

	cands := LoopInvariant(profile, 0)
	byInstr := make(map[trace.InstrID]InvariantCandidate)
	for _, c := range cands {
		byInstr[c.Instr] = c
	}

	c1, ok := byInstr[1]
	if !ok {
		t.Fatalf("load 1 not identified; candidates: %+v", cands)
	}
	if c1.ConstFrac < 0.99 {
		t.Errorf("load 1 const fraction = %v", c1.ConstFrac)
	}
	if c1.Redundant < 190 {
		t.Errorf("load 1 redundant = %d, want ~199", c1.Redundant)
	}
	// Note load 1 reads cfgObj written once by store 5 *before* the loop:
	// its MDF against store 5 is 100%, yet it is removable. The analysis
	// must look at store executions inside the load's span, not the MDF.
	if _, ok := byInstr[2]; ok {
		t.Error("strided load 2 wrongly identified as invariant")
	}
	if _, ok := byInstr[3]; ok {
		t.Error("rewritten load 3 wrongly identified as removable")
	}
}
