package depend

import (
	"math/rand"
	"testing"

	"ormprof/internal/leap"
	"ormprof/internal/lmad"
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
)

// bruteConflicting counts, by enumeration, the distinct load iterations k₂
// for which some store iteration k₁ matches in (object, offset) and occurs
// strictly earlier in time.
func bruteConflicting(st, ld *lmad.LMAD) uint64 {
	var n uint64
	for k2 := uint32(0); k2 < ld.Count; k2++ {
		hit := false
		for k1 := uint32(0); k1 < st.Count && !hit; k1++ {
			if st.At(k1, leap.DimObject) == ld.At(k2, leap.DimObject) &&
				st.At(k1, leap.DimOffset) == ld.At(k2, leap.DimOffset) &&
				st.At(k1, leap.DimTime) < ld.At(k2, leap.DimTime) {
				hit = true
			}
		}
		if hit {
			n++
		}
	}
	return n
}

func randLMAD(rng *rand.Rand) lmad.LMAD {
	l := lmad.LMAD{
		Start:  make([]int64, leap.NumDims),
		Stride: make([]int64, leap.NumDims),
		Count:  uint32(1 + rng.Intn(12)),
	}
	// Object serials and offsets from small spaces so collisions happen.
	l.Start[leap.DimObject] = int64(rng.Intn(4))
	l.Start[leap.DimOffset] = int64(rng.Intn(6) * 8)
	l.Start[leap.DimTime] = int64(rng.Intn(50))
	l.Stride[leap.DimObject] = int64(rng.Intn(3) - 1)
	l.Stride[leap.DimOffset] = int64((rng.Intn(5) - 2) * 8)
	l.Stride[leap.DimTime] = int64(1 + rng.Intn(4)) // time strictly increases
	return l
}

func TestConflictingLoadsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		st := randLMAD(rng)
		ld := randLMAD(rng)
		want := bruteConflicting(&st, &ld)
		got := ConflictingLoads(&st, &ld)
		if got != want {
			t.Fatalf("trial %d:\n st = %v\n ld = %v\n got %d, want %d", trial, &st, &ld, got, want)
		}
	}
}

func TestConflictingLoadsDegenerate(t *testing.T) {
	// Fixed-location store and load (all strides zero in space).
	mk := func(obj, off, t0, dt int64, count uint32) lmad.LMAD {
		return lmad.LMAD{
			Start:  []int64{obj, off, t0},
			Stride: []int64{0, 0, dt},
			Count:  count,
		}
	}
	st := mk(1, 8, 0, 2, 5) // stores at times 0,2,4,6,8
	ld := mk(1, 8, 1, 2, 5) // loads at times 1,3,5,7,9
	if got := ConflictingLoads(&st, &ld); got != 5 {
		t.Errorf("same location: got %d, want 5", got)
	}
	// Loads all before the first store: no conflicts.
	early := mk(1, 8, -100, 1, 5)
	if got := ConflictingLoads(&st, &early); got != 0 {
		t.Errorf("early loads: got %d, want 0", got)
	}
	// Different fixed offsets: never conflict.
	other := mk(1, 16, 10, 1, 5)
	if got := ConflictingLoads(&st, &other); got != 0 {
		t.Errorf("different offsets: got %d, want 0", got)
	}
}

func TestConflictingLoadsLargeCountsNoHang(t *testing.T) {
	// Closed-form counting must handle million-iteration LMADs instantly.
	st := lmad.LMAD{
		Start:  []int64{0, 0, 0},
		Stride: []int64{0, 8, 2},
		Count:  1 << 20,
	}
	ld := lmad.LMAD{
		Start:  []int64{0, 0, 1},
		Stride: []int64{0, 8, 2},
		Count:  1 << 20,
	}
	got := ConflictingLoads(&st, &ld)
	if got != 1<<20 {
		t.Errorf("got %d, want %d", got, 1<<20)
	}
}

// buildDependentTrace produces a trace whose true MDFs are known: store 1
// writes the whole array, load 2 reads it all (MDF 1.0), load 3 reads half
// matching locations (MDF 0.5).
func buildDependentTrace() *trace.Buffer {
	buf := &trace.Buffer{}
	m := memsim.New(buf)
	m.Start()
	arr := m.Alloc(1, 512)
	for i := 0; i < 64; i++ {
		m.Store(1, arr+trace.Addr(i*8), 8)
	}
	for i := 0; i < 64; i++ {
		m.Load(2, arr+trace.Addr(i*8), 8)
	}
	for i := 0; i < 64; i++ {
		// Half the reads are past the stored region (within a second
		// object that was never written).
		if i%2 == 0 {
			m.Load(3, arr+trace.Addr(i*8), 8)
		} else {
			m.Load(3, 0x900000+trace.Addr(i*8), 8)
		}
	}
	m.Free(arr)
	m.End()
	return buf
}

func TestFromLEAPAgainstIdeal(t *testing.T) {
	buf := buildDependentTrace()

	ideal := NewIdeal()
	buf.Replay(ideal)

	lp := leap.New(nil, 0)
	buf.Replay(lp)
	leapRes := FromLEAP(lp.Profile("synthetic"))

	im := ideal.Result().MDF()
	lm := leapRes.MDF()

	for _, tc := range []struct {
		pair Pair
		want float64
	}{
		{Pair{St: 1, Ld: 2}, 1.0},
		{Pair{St: 1, Ld: 3}, 0.5},
	} {
		if got := im[tc.pair]; got != tc.want {
			t.Errorf("ideal MDF%v = %v, want %v", tc.pair, got, tc.want)
		}
		if got := lm[tc.pair]; got != tc.want {
			t.Errorf("LEAP MDF%v = %v, want %v", tc.pair, got, tc.want)
		}
	}
}

func TestDistributionBins(t *testing.T) {
	ideal := NewResult()
	est := NewResult()
	// Pair A: exact. Pair B: underestimated by 50 points. Pair C: missed.
	ideal.LoadExecs[1] = 100
	ideal.Conflicts[Pair{St: 10, Ld: 1}] = 100
	ideal.LoadExecs[2] = 100
	ideal.Conflicts[Pair{St: 10, Ld: 2}] = 100
	ideal.LoadExecs[3] = 100
	ideal.Conflicts[Pair{St: 10, Ld: 3}] = 80

	est.LoadExecs[1] = 100
	est.Conflicts[Pair{St: 10, Ld: 1}] = 100
	est.LoadExecs[2] = 100
	est.Conflicts[Pair{St: 10, Ld: 2}] = 50
	est.LoadExecs[3] = 100
	// pair C absent entirely

	d := Distribution(ideal, est)
	if d.Pairs != 3 {
		t.Fatalf("Pairs = %d", d.Pairs)
	}
	third := 1.0 / 3
	if d.Bins[10] != third { // exact
		t.Errorf("center bin = %v", d.Bins[10])
	}
	if d.Bins[5] != third { // -50%
		t.Errorf("-50%% bin = %v", d.Bins[5])
	}
	if d.Bins[2] != third { // -80%
		t.Errorf("-80%% bin = %v", d.Bins[2])
	}
	if got := d.WithinTen(); got != third {
		t.Errorf("WithinTen = %v", got)
	}
	if got := d.Exact(); got != third {
		t.Errorf("Exact = %v", got)
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := Distribution(NewResult(), NewResult())
	if d.Pairs != 0 || d.WithinTen() != 0 {
		t.Error("empty distribution not zero")
	}
}

func TestBinError(t *testing.T) {
	if BinError(0) != -100 || BinError(10) != 0 || BinError(20) != 100 {
		t.Error("BinError mapping wrong")
	}
}

func TestAverage(t *testing.T) {
	var a, b ErrorDist
	a.Bins[10] = 1.0
	a.Pairs = 4
	b.Bins[0] = 1.0
	b.Pairs = 6
	avg := Average(a, b, ErrorDist{}) // empty one skipped
	if avg.Bins[10] != 0.5 || avg.Bins[0] != 0.5 {
		t.Errorf("Average bins = %v / %v", avg.Bins[10], avg.Bins[0])
	}
	if avg.Pairs != 10 {
		t.Errorf("Average pairs = %d", avg.Pairs)
	}
}

// TestConflictingSetMatchesBruteForceSet verifies not just the count but the
// exact set of conflicting load iterations (needed for the union logic).
func TestConflictingSetMatchesBruteForceSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20000; trial++ {
		st := randLMAD(rng)
		ld := randLMAD(rng)

		want := make(map[int64]bool)
		for k2 := uint32(0); k2 < ld.Count; k2++ {
			for k1 := uint32(0); k1 < st.Count; k1++ {
				if st.At(k1, leap.DimObject) == ld.At(k2, leap.DimObject) &&
					st.At(k1, leap.DimOffset) == ld.At(k2, leap.DimOffset) &&
					st.At(k1, leap.DimTime) < ld.At(k2, leap.DimTime) {
					want[int64(k2)] = true
					break
				}
			}
		}
		s := conflictingSet(&st, &ld)
		got := make(map[int64]bool, s.n)
		v := s.first
		for i := uint64(0); i < s.n; i++ {
			got[v] = true
			v += s.step
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: set sizes differ: got %v want %v\n st=%v\n ld=%v", trial, got, want, &st, &ld)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing k2=%d\n st=%v\n ld=%v", trial, k, &st, &ld)
			}
		}
	}
}

func TestUnionSize(t *testing.T) {
	cases := []struct {
		sets  []ap
		clamp uint64
		want  uint64
	}{
		{nil, 10, 0},
		{[]ap{{first: 0, step: 1, n: 5}}, 10, 5},
		{[]ap{{first: 0, step: 1, n: 5}}, 3, 3}, // clamped
		{[]ap{{first: 0, step: 2, n: 3}, {first: 0, step: 2, n: 3}}, 10, 3},   // identical
		{[]ap{{first: 0, step: 2, n: 3}, {first: 1, step: 2, n: 3}}, 10, 6},   // interleaved
		{[]ap{{first: 0, step: 1, n: 4}, {first: 2, step: 1, n: 4}}, 10, 6},   // overlapping
		{[]ap{{first: 0, step: 3, n: 2}, {first: 100, step: 1, n: 1}}, 10, 3}, // disjoint
	}
	for i, c := range cases {
		if got := unionSize(c.sets, c.clamp); got != c.want {
			t.Errorf("case %d: unionSize = %d, want %d", i, got, c.want)
		}
	}
}

func TestSolveCongruenceAndCRT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5000; trial++ {
		a := int64(rng.Intn(21) - 10)
		b := int64(rng.Intn(21) - 10)
		m := int64(1 + rng.Intn(12))
		r, mm, ok := solveCongruence(a, b, m)
		// Brute-force reference over one full period.
		var sols []int64
		for k := int64(0); k < m; k++ {
			if ((a*k-b)%m+m)%m == 0 {
				sols = append(sols, k)
			}
		}
		if !ok {
			if len(sols) != 0 {
				t.Fatalf("solveCongruence(%d,%d,%d) = no solution, brute force found %v", a, b, m, sols)
			}
			continue
		}
		if mm < 1 {
			t.Fatalf("modulus %d", mm)
		}
		for k := int64(0); k < m; k++ {
			want := ((a*k-b)%m+m)%m == 0
			got := ((k-r)%mm+mm)%mm == 0
			if want != got {
				t.Fatalf("solveCongruence(%d,%d,%d) = (%d mod %d): k=%d classified %v, want %v",
					a, b, m, r, mm, k, got, want)
			}
		}
	}
	// CRT against brute force.
	for trial := 0; trial < 5000; trial++ {
		m1 := int64(1 + rng.Intn(10))
		m2 := int64(1 + rng.Intn(10))
		r1 := int64(rng.Intn(int(m1)))
		r2 := int64(rng.Intn(int(m2)))
		r, m, ok := crt(r1, m1, r2, m2)
		var sols []int64
		lcm := m1 * m2
		for k := int64(0); k < lcm; k++ {
			if k%m1 == r1 && k%m2 == r2 {
				sols = append(sols, k)
			}
		}
		if !ok {
			if len(sols) != 0 {
				t.Fatalf("crt(%d,%d,%d,%d) failed, brute force found %v", r1, m1, r2, m2, sols)
			}
			continue
		}
		for k := int64(0); k < lcm; k++ {
			want := k%m1 == r1 && k%m2 == r2
			got := ((k-r)%m+m)%m == 0
			if want != got {
				t.Fatalf("crt(%d,%d,%d,%d) = (%d mod %d): k=%d classified %v, want %v",
					r1, m1, r2, m2, r, m, k, got, want)
			}
		}
	}
}

func TestCountCongruent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 3000; trial++ {
		lo := int64(rng.Intn(41) - 20)
		hi := lo + int64(rng.Intn(40))
		m := int64(1 + rng.Intn(9))
		r := int64(rng.Intn(int(m)))
		var want uint64
		for k := lo; k <= hi; k++ {
			if ((k-r)%m+m)%m == 0 {
				want++
			}
		}
		if got := countCongruent(lo, hi, r, m); got != want {
			t.Fatalf("countCongruent(%d,%d,%d,%d) = %d, want %d", lo, hi, r, m, got, want)
		}
	}
	if countCongruent(5, 4, 0, 3) != 0 {
		t.Error("empty interval")
	}
}
