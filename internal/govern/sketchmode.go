package govern

import (
	"fmt"

	"ormprof/internal/sketch"
	"ormprof/internal/trace"
)

// DefaultSketchSeed seeds the sketch rungs' hashing. It is a package
// constant — NOT the ladder's per-session Config.Seed — because the
// cluster merge plane folds per-session sketches together, and count-min
// cells and bloom bits are only comparable between sketches hashed with
// the same seed. Per-session variation lives in the object-sampling
// filter; the sketch rungs trade it for cross-session mergeability.
const DefaultSketchSeed = 0x5ce7c4a1d3b2f109

// SketchConfig sizes the sketch rungs. The zero value selects the
// defaults; all sizes are fixed at construction, so a sketch rung's
// footprint is a constant (≈256K for sketch-stride, ≈22K for
// sketch-counters at the defaults) regardless of trace length.
type SketchConfig struct {
	// Seed seeds all sketch hashing (0 selects DefaultSketchSeed).
	Seed uint64
	// Depth is the count-min depth d; δ = e^−d (0 selects 4).
	Depth int
	// StrideWidth is the (instruction, stride) count-min width; ε = e/w
	// (0 selects 4096).
	StrideWidth int
	// TotalWidth is the per-instruction totals count-min width
	// (0 selects 2048).
	TotalWidth int
	// SiteWidth is the per-site allocation count-min width at
	// sketch-counters (0 selects 512).
	SiteWidth int
	// TopK is the heavy-hitter capacity; overcount bound N/k
	// (0 selects 64).
	TopK int
	// BloomBits sizes the seen-digram bloom filter (0 selects 1<<17).
	BloomBits int
	// LastSlots sizes the direct-mapped last-address table that stride
	// deltas are computed from (0 selects 2048).
	LastSlots int
}

func (c SketchConfig) withDefaults() SketchConfig {
	if c.Seed == 0 {
		c.Seed = DefaultSketchSeed
	}
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.StrideWidth == 0 {
		c.StrideWidth = 4096
	}
	if c.TotalWidth == 0 {
		c.TotalWidth = 2048
	}
	if c.SiteWidth == 0 {
		c.SiteWidth = 512
	}
	if c.TopK == 0 {
		c.TopK = 64
	}
	if c.BloomBits == 0 {
		c.BloomBits = 1 << 17
	}
	if c.LastSlots == 0 {
		c.LastSlots = 2048
	}
	return c
}

// lastSlot is one entry of the direct-mapped last-address table. Instr
// stores the instruction ID plus one (0 = empty slot).
type lastSlot struct {
	instr uint64
	addr  uint64
}

// sketchStrideMode implements RungSketchStride. Everything is fixed
// memory: stride deltas come from a direct-mapped last-address table
// (collisions evict deterministically — the table is a pure function of
// the stream), the per-(instruction, stride) histogram and the
// per-instruction totals are count-min sketches, hot cache lines and
// strongly-strided pairs are space-saving top-K summaries, and the
// seen-digram test feeding grammar-admission statistics is a bloom
// filter. Exact scalars (loads/stores/allocs/frees) ride along for free.
type sketchStrideMode struct {
	cfg    SketchConfig
	strC   *sketch.CountMin // (instr, stride-bits) -> count
	totC   *sketch.CountMin // (instr) -> executions with a stride sample
	dig    *sketch.Bloom    // (prev instr, instr) digrams
	pairs  *sketch.TopK     // heavy (instr, stride-bits) pairs
	hot    *sketch.TopK     // heavy cache lines (hot-object proxy)
	last   []lastSlot
	mask   uint64
	prev   uint64 // previous access instruction + 1; 0 = none
	loads  uint64
	stores uint64
	allocs uint64
	frees  uint64
	foot   int64
}

func newSketchStrideMode(cfg SketchConfig) *sketchStrideMode {
	cfg = cfg.withDefaults()
	m := &sketchStrideMode{
		cfg:   cfg,
		strC:  sketch.NewCountMin(cfg.Depth, cfg.StrideWidth, cfg.Seed),
		totC:  sketch.NewCountMin(cfg.Depth, cfg.TotalWidth, cfg.Seed+1),
		dig:   sketch.NewBloom(cfg.BloomBits, 4, cfg.Seed+2),
		pairs: sketch.NewTopK(cfg.TopK),
		hot:   sketch.NewTopK(cfg.TopK),
		last:  make([]lastSlot, ceilPow2(cfg.LastSlots)),
	}
	m.mask = uint64(len(m.last)) - 1
	m.foot = m.strC.Footprint() + m.totC.Footprint() + m.dig.Footprint() +
		m.pairs.Footprint() + m.hot.Footprint() + int64(len(m.last))*16 + 128
	return m
}

func ceilPow2(n int) uint64 {
	p := uint64(2)
	for p < uint64(n) {
		p <<= 1
	}
	return p
}

func (m *sketchStrideMode) Emit(e trace.Event) {
	switch e.Kind {
	case trace.EvAlloc:
		m.allocs++
		return
	case trace.EvFree:
		m.frees++
		return
	}
	if e.Store {
		m.stores++
	} else {
		m.loads++
	}
	instr := uint64(e.Instr)
	addr := uint64(e.Addr)

	// Seen-digram test: has this (prev, cur) instruction pair occurred?
	if m.prev != 0 {
		m.dig.Add(sketch.Key{A: m.prev - 1, B: instr})
	}
	m.prev = instr + 1

	// Stride sample against the direct-mapped last-address table.
	slot := &m.last[mix(m.cfg.Seed^instr)&m.mask]
	if slot.instr == instr+1 {
		strideBits := addr - slot.addr // two's-complement delta
		k := sketch.Key{A: instr, B: strideBits}
		m.strC.Add(k, 1)
		m.totC.Add(sketch.Key{A: instr}, 1)
		m.pairs.Add(k, 1)
	}
	slot.instr = instr + 1
	slot.addr = addr

	// Hot cache lines: the fixed-memory proxy for hot objects once the
	// object map is gone.
	m.hot.Add(sketch.Key{A: addr >> 6}, 1)
}

func (m *sketchStrideMode) Footprint() int64 { return m.foot }

// sketchCountersMode implements RungSketchCounters: a count-min sketch
// of per-site allocation counts plus top-K hot sites, with exact scalar
// totals. Unlike the exact counters floor its footprint does not grow
// with the number of distinct sites.
type sketchCountersMode struct {
	cfg    SketchConfig
	sites  *sketch.CountMin // (site) -> allocs
	hot    *sketch.TopK     // heavy allocation sites
	loads  uint64
	stores uint64
	allocs uint64
	frees  uint64
	foot   int64
}

func newSketchCountersMode(cfg SketchConfig) *sketchCountersMode {
	cfg = cfg.withDefaults()
	m := &sketchCountersMode{
		cfg:   cfg,
		sites: sketch.NewCountMin(cfg.Depth, cfg.SiteWidth, cfg.Seed+3),
		hot:   sketch.NewTopK(cfg.TopK),
	}
	m.foot = m.sites.Footprint() + m.hot.Footprint() + 128
	return m
}

func (m *sketchCountersMode) Emit(e trace.Event) {
	switch e.Kind {
	case trace.EvAlloc:
		m.allocs++
		k := sketch.Key{A: uint64(e.Site)}
		m.sites.Add(k, 1)
		m.hot.Add(k, 1)
	case trace.EvFree:
		m.frees++
	case trace.EvAccess:
		if e.Store {
			m.stores++
		} else {
			m.loads++
		}
	}
}

func (m *sketchCountersMode) Footprint() int64 { return m.foot }

func (m *sketchStrideMode) snapshot() *SketchStrideSnapshot {
	last := make([]LastSlot, len(m.last))
	for i, s := range m.last {
		last[i] = LastSlot{Instr: s.instr, Addr: s.addr}
	}
	return &SketchStrideSnapshot{
		Config: m.cfg,
		Stride: m.strC.Snapshot(),
		Totals: m.totC.Snapshot(),
		Digram: m.dig.Snapshot(),
		Pairs:  m.pairs.Snapshot(),
		Hot:    m.hot.Snapshot(),
		Last:   last,
		Prev:   m.prev,
		Loads:  m.loads,
		Stores: m.stores,
		Allocs: m.allocs,
		Frees:  m.frees,
	}
}

func (m *sketchCountersMode) snapshot() *SketchCountersSnapshot {
	return &SketchCountersSnapshot{
		Config: m.cfg,
		Sites:  m.sites.Snapshot(),
		Hot:    m.hot.Snapshot(),
		Loads:  m.loads,
		Stores: m.stores,
		Allocs: m.allocs,
		Frees:  m.frees,
	}
}

// restoreSketchStrideMode rebuilds the mode from its snapshot so that a
// resumed session continues byte-identically.
func restoreSketchStrideMode(s *SketchStrideSnapshot) (*sketchStrideMode, error) {
	if s == nil {
		return nil, fmt.Errorf("snapshot missing")
	}
	strC, err := sketch.RestoreCountMin(s.Stride)
	if err != nil {
		return nil, err
	}
	totC, err := sketch.RestoreCountMin(s.Totals)
	if err != nil {
		return nil, err
	}
	dig, err := sketch.RestoreBloom(s.Digram)
	if err != nil {
		return nil, err
	}
	pairs, err := sketch.RestoreTopK(s.Pairs)
	if err != nil {
		return nil, err
	}
	hot, err := sketch.RestoreTopK(s.Hot)
	if err != nil {
		return nil, err
	}
	n := uint64(len(s.Last))
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("corrupt last-address table: %d slots", n)
	}
	m := &sketchStrideMode{
		cfg:    s.Config.withDefaults(),
		strC:   strC,
		totC:   totC,
		dig:    dig,
		pairs:  pairs,
		hot:    hot,
		last:   make([]lastSlot, n),
		mask:   n - 1,
		prev:   s.Prev,
		loads:  s.Loads,
		stores: s.Stores,
		allocs: s.Allocs,
		frees:  s.Frees,
	}
	for i, slot := range s.Last {
		m.last[i] = lastSlot{instr: slot.Instr, addr: slot.Addr}
	}
	m.foot = m.strC.Footprint() + m.totC.Footprint() + m.dig.Footprint() +
		m.pairs.Footprint() + m.hot.Footprint() + int64(len(m.last))*16 + 128
	return m, nil
}

// restoreSketchCountersMode rebuilds the mode from its snapshot.
func restoreSketchCountersMode(s *SketchCountersSnapshot) (*sketchCountersMode, error) {
	if s == nil {
		return nil, fmt.Errorf("snapshot missing")
	}
	sites, err := sketch.RestoreCountMin(s.Sites)
	if err != nil {
		return nil, err
	}
	hot, err := sketch.RestoreTopK(s.Hot)
	if err != nil {
		return nil, err
	}
	m := &sketchCountersMode{
		cfg:    s.Config.withDefaults(),
		sites:  sites,
		hot:    hot,
		loads:  s.Loads,
		stores: s.Stores,
		allocs: s.Allocs,
		frees:  s.Frees,
	}
	m.foot = m.sites.Footprint() + m.hot.Footprint() + 128
	return m, nil
}

// Merge folds other into s for the cluster merge plane: count-min cells
// add, bloom bits OR, top-K summaries combine with the mergeable-
// summaries construction, exact scalars sum. The mid-stream fields
// (last-address table, previous instruction) are cleared — a merged
// snapshot describes a union of finished streams and is for reporting,
// not for resuming. Shape or seed mismatches surface as
// *sketch.MismatchError.
func (s *SketchStrideSnapshot) Merge(other *SketchStrideSnapshot) error {
	strC, err := sketch.RestoreCountMin(s.Stride)
	if err != nil {
		return err
	}
	oStr, err := sketch.RestoreCountMin(other.Stride)
	if err != nil {
		return err
	}
	if err := strC.Merge(oStr); err != nil {
		return err
	}
	totC, err := sketch.RestoreCountMin(s.Totals)
	if err != nil {
		return err
	}
	oTot, err := sketch.RestoreCountMin(other.Totals)
	if err != nil {
		return err
	}
	if err := totC.Merge(oTot); err != nil {
		return err
	}
	dig, err := sketch.RestoreBloom(s.Digram)
	if err != nil {
		return err
	}
	oDig, err := sketch.RestoreBloom(other.Digram)
	if err != nil {
		return err
	}
	if err := dig.Merge(oDig); err != nil {
		return err
	}
	pairs, err := sketch.RestoreTopK(s.Pairs)
	if err != nil {
		return err
	}
	oPairs, err := sketch.RestoreTopK(other.Pairs)
	if err != nil {
		return err
	}
	if err := pairs.Merge(oPairs); err != nil {
		return err
	}
	hot, err := sketch.RestoreTopK(s.Hot)
	if err != nil {
		return err
	}
	oHot, err := sketch.RestoreTopK(other.Hot)
	if err != nil {
		return err
	}
	if err := hot.Merge(oHot); err != nil {
		return err
	}
	s.Stride = strC.Snapshot()
	s.Totals = totC.Snapshot()
	s.Digram = dig.Snapshot()
	s.Pairs = pairs.Snapshot()
	s.Hot = hot.Snapshot()
	s.Last = nil
	s.Prev = 0
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.Allocs += other.Allocs
	s.Frees += other.Frees
	return nil
}

// Merge folds other into s; see SketchStrideSnapshot.Merge.
func (s *SketchCountersSnapshot) Merge(other *SketchCountersSnapshot) error {
	sites, err := sketch.RestoreCountMin(s.Sites)
	if err != nil {
		return err
	}
	oSites, err := sketch.RestoreCountMin(other.Sites)
	if err != nil {
		return err
	}
	if err := sites.Merge(oSites); err != nil {
		return err
	}
	hot, err := sketch.RestoreTopK(s.Hot)
	if err != nil {
		return err
	}
	oHot, err := sketch.RestoreTopK(other.Hot)
	if err != nil {
		return err
	}
	if err := hot.Merge(oHot); err != nil {
		return err
	}
	s.Sites = sites.Snapshot()
	s.Hot = hot.Snapshot()
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.Allocs += other.Allocs
	s.Frees += other.Frees
	return nil
}
