package govern

import (
	"sort"

	"ormprof/internal/stride"
	"ormprof/internal/trace"
)

// Mode is what a ladder governs: an event sink whose live memory it can
// account. The full profiling pipelines (whomp.Profiler, leap.Profiler,
// stride.Ideal, …) implement it; the ladder's own degraded modes do too.
type Mode interface {
	trace.Sink
	// Footprint reports the mode's approximate live bytes. It must be
	// O(1) — incrementally maintained on mutation, never a walk — because
	// the ladder reads it after every event.
	Footprint() int64
}

// DefaultSampleMod is the default site-sampling modulus at RungSampled:
// roughly one in this many allocation sites is kept.
const DefaultSampleMod = 4

// Config configures a Ladder.
type Config struct {
	// Budget is the enforced memory budget. nil means account-only
	// (never trips).
	Budget *Budget
	// Seed drives the deterministic site subset at RungSampled.
	Seed uint64
	// SampleMod keeps roughly one in SampleMod allocation sites at
	// RungSampled (0 selects DefaultSampleMod).
	SampleMod uint64
	// Full builds a fresh full-profiling mode. It is called once at
	// construction and again on the step to RungSampled (the sampled rung
	// profiles with a fresh pipeline so the exploded structures of the
	// full rung are actually freed).
	Full func() Mode
	// StartRung starts the ladder below full profiling — approximate
	// mode, the CLI's -approx. A ladder started at RungSketchStride or
	// RungSketchCounters records no step-downs, so Err() stays nil (the
	// run is approximate by request, not degraded) unless the budget
	// forces further steps. Any other value starts at RungFull.
	StartRung Rung
	// Sketch sizes the sketch rungs (the zero value selects the
	// defaults; see SketchConfig).
	Sketch SketchConfig
}

// Ladder is a trace.Sink that wraps a profiling mode in budget
// enforcement: after every event it folds the mode's footprint delta into
// the budget, and while the budget is over its watermark it steps down to
// the next cheaper mode. Stepping down discards the current mode's state
// (returning its accounted bytes) and continues the stream in the new
// mode from the current position.
//
// A Ladder is not safe for concurrent use; governed pipelines are
// sequential by design (see the package comment's determinism contract).
type Ladder struct {
	cfg       Config
	rung      Rung
	cur       Mode
	filter    *siteFilter         // non-nil at RungSampled
	sketchStr *sketchStrideMode   // non-nil at RungSketchStride
	sketchCtr *sketchCountersMode // non-nil at RungSketchCounters
	stride    *strideMode         // non-nil at RungStrideOnly
	counters  *countersMode       // non-nil at RungCounters
	steps     []Step
	events    uint64
	reported  int64 // bytes currently accounted into the budget
	sites     map[trace.SiteID]string
}

// NewLadder creates a ladder at cfg.StartRung (RungFull by default).
func NewLadder(cfg Config) *Ladder {
	if cfg.Budget == nil {
		cfg.Budget = NewBudget(0)
	}
	if cfg.SampleMod == 0 {
		cfg.SampleMod = DefaultSampleMod
	}
	l := &Ladder{cfg: cfg}
	switch cfg.StartRung {
	case RungSketchStride:
		l.rung = RungSketchStride
		l.sketchStr = newSketchStrideMode(cfg.Sketch)
		l.cur = l.sketchStr
	case RungSketchCounters:
		l.rung = RungSketchCounters
		l.sketchCtr = newSketchCountersMode(cfg.Sketch)
		l.cur = l.sketchCtr
	default:
		l.cur = cfg.Full()
	}
	l.account()
	return l
}

// NameSite implements trace.SiteNamer: names are remembered (so modes
// built by later step-downs can receive them) and forwarded to the
// current mode.
func (l *Ladder) NameSite(site trace.SiteID, name string) {
	if l.sites == nil {
		l.sites = make(map[trace.SiteID]string)
	}
	l.sites[site] = name
	if n, ok := l.cur.(trace.SiteNamer); ok {
		n.NameSite(site, name)
	}
}

// Emit implements trace.Sink: deliver, account, and step down while the
// budget is over its watermark.
func (l *Ladder) Emit(e trace.Event) {
	l.events++
	l.cur.Emit(e)
	l.account()
	for l.cfg.Budget.Over() && !l.rung.Floor() {
		l.stepDown()
	}
}

// account folds the current mode's footprint delta into the budget.
func (l *Ladder) account() {
	f := l.cur.Footprint()
	if d := f - l.reported; d != 0 {
		l.cfg.Budget.Add(d)
		l.reported = f
	}
}

// stepDown moves to the next rung, discarding the current mode's state.
//
// Sketch rungs are special-cased: their footprint is fixed and known at
// construction, so one that cannot fit under the budget is skipped
// outright. Building it, charging it, and immediately re-tripping would
// spike the accounted peak above the limit the ladder exists to enforce.
func (l *Ladder) stepDown() {
	used := l.cfg.Budget.Used()
	from := l.rung
	next, ok := l.rung.Next()
	if !ok {
		return
	}
	var sketchMode Mode
	for next.Sketch() {
		if next == RungSketchStride {
			sketchMode = Mode(newSketchStrideMode(l.cfg.Sketch))
		} else {
			sketchMode = Mode(newSketchCountersMode(l.cfg.Sketch))
		}
		// The check simulates replacing the current mode's accounted
		// bytes with the candidate's fixed footprint.
		if !l.cfg.Budget.WouldOver(sketchMode.Footprint() - l.reported) {
			break
		}
		sketchMode = nil
		n, ok := next.Next()
		if !ok {
			break
		}
		next = n
	}
	l.filter, l.sketchStr, l.sketchCtr, l.stride, l.counters = nil, nil, nil, nil, nil
	switch next {
	case RungSampled:
		inner := l.cfg.Full()
		l.replayNames(inner)
		l.filter = newSiteFilter(l.cfg.Seed, l.cfg.SampleMod, inner)
		l.cur = l.filter
	case RungSketchStride:
		l.sketchStr = sketchMode.(*sketchStrideMode)
		l.cur = l.sketchStr
	case RungSketchCounters:
		l.sketchCtr = sketchMode.(*sketchCountersMode)
		l.cur = l.sketchCtr
	case RungStrideOnly:
		l.stride = newStrideMode()
		l.cur = l.stride
	case RungCounters:
		l.counters = newCountersMode()
		l.cur = l.counters
	}
	l.rung = next
	l.steps = append(l.steps, Step{From: from, To: l.rung, Event: l.events, Used: used})
	l.account()
}

// replayNames hands the remembered site names to a freshly built mode, in
// sorted order for determinism.
func (l *Ladder) replayNames(m Mode) {
	n, ok := m.(trace.SiteNamer)
	if !ok || len(l.sites) == 0 {
		return
	}
	ids := make([]trace.SiteID, 0, len(l.sites))
	for id := range l.sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n.NameSite(id, l.sites[id])
	}
}

// ForceStep steps down one rung regardless of the budget (load shedding).
// It reports false at the floor.
func (l *Ladder) ForceStep() bool {
	if l.rung.Floor() {
		return false
	}
	l.stepDown()
	return true
}

// Rung reports the current rung.
func (l *Ladder) Rung() Rung { return l.rung }

// Events reports how many events the ladder has delivered.
func (l *Ladder) Events() uint64 { return l.events }

// Budget returns the ladder's budget.
func (l *Ladder) Budget() *Budget { return l.cfg.Budget }

// Steps returns a copy of the step-down history.
func (l *Ladder) Steps() []Step { return append([]Step(nil), l.steps...) }

// Mode returns the mode currently consuming events. At RungFull this is
// the value Config.Full returned; at RungSampled it is the site filter
// wrapping a fresh full mode (Inner exposes it); below that it is the
// ladder's own degraded mode.
func (l *Ladder) Mode() Mode { return l.cur }

// FullMode returns the full-pipeline mode that is producing output, or
// nil below RungSampled: at RungFull the governed mode itself, at
// RungSampled the fresh pipeline behind the site filter.
func (l *Ladder) FullMode() Mode {
	switch l.rung {
	case RungFull:
		return l.cur
	case RungSampled:
		return l.filter.inner
	default:
		return nil
	}
}

// StrideProfiler returns the stride-only rung's lossless stride profiler,
// or nil unless the ladder is at RungStrideOnly.
func (l *Ladder) StrideProfiler() *stride.Ideal {
	if l.stride == nil {
		return nil
	}
	return l.stride.ideal
}

// Err returns nil after an undegraded run, or the typed *DegradedError
// describing the final mode and every step-down.
func (l *Ladder) Err() error {
	if len(l.steps) == 0 {
		return nil
	}
	return &DegradedError{
		Limit: l.cfg.Budget.EffectiveLimit(),
		Rung:  l.rung,
		Steps: l.Steps(),
	}
}
