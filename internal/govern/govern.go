// Package govern implements resource governance for long-running
// profiling: accounted memory budgets and a deterministic degradation
// ladder.
//
// The paper's central evidence (Figs. 5–7) is that raw-address Sequitur
// grammars explode on irregular streams while object-relative ones stay
// compact — but "stay compact" is a property of the workload, not a
// guarantee. One pathological stream can grow a grammar without bound and
// take the whole process with it. This package turns that failure mode
// into a controlled one: every core profiling structure reports an
// incrementally maintained Footprint (approximate live bytes, updated on
// mutation, never a walk), the footprints accumulate into a Budget, and
// when the budget trips, a Ladder steps the pipeline down a fixed
// sequence of cheaper modes:
//
//	full profiling            everything the pipeline normally builds
//	object-sampled            a fresh full pipeline behind a deterministic,
//	                          seeded subset of allocation sites
//	sketch-stride             fixed-memory sketches: count-min stride
//	                          histograms, a seen-digram bloom filter, and
//	                          top-K heavy hitters, with ε/δ error bounds
//	sketch-counters           fixed-memory per-site allocation sketch plus
//	                          top-K hot sites
//	stride-only               the lossless stride profiler alone
//	per-site counters         allocation counts per site plus access totals
//
// Every step-down is recorded; a degraded run surfaces as a typed
// *DegradedError that the CLI's Salvaged/exit-2 convention carries, so
// partial output still renders and the report says exactly which mode
// produced it. The sketch rungs can also be requested directly
// (Config.StartRung, the CLI's -approx): a ladder started there records
// no steps and reports no degradation unless the budget forces it
// further down.
//
// Determinism contract: a governed pipeline is sequential, so the trip
// points — which event tripped the budget, which rung produced the
// output — are a pure function of (event stream, budget, seed). Parallel
// profile construction is defined elsewhere to be byte-identical to
// sequential construction, so governed output is also independent of the
// -workers setting.
package govern

import (
	"fmt"
	"strconv"
	"strings"
)

// Rung is one level of the degradation ladder.
//
// The integer values are a serialization format — gob-encoded ORMCKPT
// checkpoints store them — so new rungs are APPENDED, never inserted:
// the sketch rungs are 4 and 5 even though they sit between
// object-sampled and stride-only in the ladder. Never order rungs by
// comparing their integer values; use rank (via Next/FullPipeline/
// Floor) instead.
type Rung int

const (
	// RungFull is ordinary, ungoverned-quality profiling.
	RungFull Rung = iota
	// RungSampled profiles a deterministic, seeded subset of allocation
	// sites with a fresh full pipeline; accesses outside the sampled live
	// objects are dropped so the unmapped-address stream cannot regrow
	// the grammars.
	RungSampled
	// RungStrideOnly keeps only the lossless per-instruction stride
	// histograms.
	RungStrideOnly
	// RungCounters keeps only per-site allocation counts and access
	// totals. It is the ladder's floor: it cannot trip further.
	RungCounters
	// RungSketchStride keeps fixed-memory sketches of the access stream:
	// count-min per-instruction stride histograms, a bloom filter over
	// instruction digrams, and space-saving top-K heavy hitters, each
	// carrying its own ε/δ error bound. Ladder position: between
	// object-sampled and sketch-counters.
	RungSketchStride
	// RungSketchCounters keeps a fixed-memory count-min sketch of per-site
	// allocation counts plus top-K hot sites. Ladder position: between
	// sketch-stride and stride-only.
	RungSketchCounters
)

// String returns the rung's report name.
func (r Rung) String() string {
	switch r {
	case RungFull:
		return "full"
	case RungSampled:
		return "object-sampled"
	case RungSketchStride:
		return "sketch-stride"
	case RungSketchCounters:
		return "sketch-counters"
	case RungStrideOnly:
		return "stride-only"
	case RungCounters:
		return "per-site-counters"
	default:
		return fmt.Sprintf("rung(%d)", int(r))
	}
}

// Next returns the rung one step down the ladder, or (r, false) at the
// floor or for an unknown rung. This — not integer order — defines the
// ladder sequence.
func (r Rung) Next() (Rung, bool) {
	switch r {
	case RungFull:
		return RungSampled, true
	case RungSampled:
		return RungSketchStride, true
	case RungSketchStride:
		return RungSketchCounters, true
	case RungSketchCounters:
		return RungStrideOnly, true
	case RungStrideOnly:
		return RungCounters, true
	default:
		return r, false
	}
}

// Rank returns the rung's position in the ladder order (0 = full,
// 5 = per-site counters), or -1 for an unknown rung. Use it — never the
// integer values — when two rungs must be ordered.
func (r Rung) Rank() int {
	switch r {
	case RungFull:
		return 0
	case RungSampled:
		return 1
	case RungSketchStride:
		return 2
	case RungSketchCounters:
		return 3
	case RungStrideOnly:
		return 4
	case RungCounters:
		return 5
	default:
		return -1
	}
}

// FullPipeline reports whether the rung runs a full profiling pipeline
// whose state lives outside the ladder (full, or full behind the
// object-sampling filter). Callers restoring or serializing pipeline
// state must use this instead of comparing rung integers.
func (r Rung) FullPipeline() bool {
	return r == RungFull || r == RungSampled
}

// Floor reports whether the rung is the ladder's floor (it cannot trip
// further).
func (r Rung) Floor() bool { return r == RungCounters }

// Sketch reports whether the rung is one of the fixed-memory sketch
// rungs, whose reports carry ε/δ error bounds.
func (r Rung) Sketch() bool {
	return r == RungSketchStride || r == RungSketchCounters
}

// Step records one ladder step-down.
type Step struct {
	From, To Rung
	// Event is the 1-based index of the event whose footprint growth
	// tripped the budget.
	Event uint64
	// Used is the accounted footprint at the moment of the trip.
	Used int64
}

// DegradedError is the typed error a degraded run reports: the budget, the
// rung that produced the final output, and the full step history. It rides
// the same Salvaged/exit-2 convention as the fault-tolerance layer's typed
// errors — partial output still renders, and the error says which mode
// produced it.
type DegradedError struct {
	Limit int64
	Rung  Rung
	Steps []Step
}

func (e *DegradedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mem budget %s: profiling degraded to %s (", FormatSize(e.Limit), e.Rung)
	for i, s := range e.Steps {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s→%s at event %d", s.From, s.To, s.Event)
	}
	b.WriteString(")")
	return b.String()
}

// ParseSize parses a byte-count flag value: a non-negative integer with an
// optional K, M, or G suffix (powers of 1024). 0 means unlimited.
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "K"), strings.HasSuffix(t, "k"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"), strings.HasSuffix(t, "m"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "G"), strings.HasSuffix(t, "g"):
		mult, t = 1<<30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a size (want bytes with optional K/M/G suffix): %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("size must be non-negative: %q", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("size overflows: %q", s)
	}
	return n * mult, nil
}

// FormatSize renders a byte count the way ParseSize reads it, using the
// largest suffix that divides it exactly.
func FormatSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
