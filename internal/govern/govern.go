// Package govern implements resource governance for long-running
// profiling: accounted memory budgets and a deterministic degradation
// ladder.
//
// The paper's central evidence (Figs. 5–7) is that raw-address Sequitur
// grammars explode on irregular streams while object-relative ones stay
// compact — but "stay compact" is a property of the workload, not a
// guarantee. One pathological stream can grow a grammar without bound and
// take the whole process with it. This package turns that failure mode
// into a controlled one: every core profiling structure reports an
// incrementally maintained Footprint (approximate live bytes, updated on
// mutation, never a walk), the footprints accumulate into a Budget, and
// when the budget trips, a Ladder steps the pipeline down a fixed
// sequence of cheaper modes:
//
//	full profiling            everything the pipeline normally builds
//	object-sampled            a fresh full pipeline behind a deterministic,
//	                          seeded subset of allocation sites
//	stride-only               the lossless stride profiler alone
//	per-site counters         allocation counts per site plus access totals
//
// Every step-down is recorded; a degraded run surfaces as a typed
// *DegradedError that the CLI's Salvaged/exit-2 convention carries, so
// partial output still renders and the report says exactly which mode
// produced it.
//
// Determinism contract: a governed pipeline is sequential, so the trip
// points — which event tripped the budget, which rung produced the
// output — are a pure function of (event stream, budget, seed). Parallel
// profile construction is defined elsewhere to be byte-identical to
// sequential construction, so governed output is also independent of the
// -workers setting.
package govern

import (
	"fmt"
	"strconv"
	"strings"
)

// Rung is one level of the degradation ladder, ordered from most to least
// expensive.
type Rung int

const (
	// RungFull is ordinary, ungoverned-quality profiling.
	RungFull Rung = iota
	// RungSampled profiles a deterministic, seeded subset of allocation
	// sites with a fresh full pipeline; accesses outside the sampled live
	// objects are dropped so the unmapped-address stream cannot regrow
	// the grammars.
	RungSampled
	// RungStrideOnly keeps only the lossless per-instruction stride
	// histograms.
	RungStrideOnly
	// RungCounters keeps only per-site allocation counts and access
	// totals. It is the ladder's floor: it cannot trip further.
	RungCounters
)

// String returns the rung's report name.
func (r Rung) String() string {
	switch r {
	case RungFull:
		return "full"
	case RungSampled:
		return "object-sampled"
	case RungStrideOnly:
		return "stride-only"
	case RungCounters:
		return "per-site-counters"
	default:
		return fmt.Sprintf("rung(%d)", int(r))
	}
}

// Step records one ladder step-down.
type Step struct {
	From, To Rung
	// Event is the 1-based index of the event whose footprint growth
	// tripped the budget.
	Event uint64
	// Used is the accounted footprint at the moment of the trip.
	Used int64
}

// DegradedError is the typed error a degraded run reports: the budget, the
// rung that produced the final output, and the full step history. It rides
// the same Salvaged/exit-2 convention as the fault-tolerance layer's typed
// errors — partial output still renders, and the error says which mode
// produced it.
type DegradedError struct {
	Limit int64
	Rung  Rung
	Steps []Step
}

func (e *DegradedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mem budget %s: profiling degraded to %s (", FormatSize(e.Limit), e.Rung)
	for i, s := range e.Steps {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s→%s at event %d", s.From, s.To, s.Event)
	}
	b.WriteString(")")
	return b.String()
}

// ParseSize parses a byte-count flag value: a non-negative integer with an
// optional K, M, or G suffix (powers of 1024). 0 means unlimited.
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "K"), strings.HasSuffix(t, "k"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"), strings.HasSuffix(t, "m"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "G"), strings.HasSuffix(t, "g"):
		mult, t = 1<<30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a size (want bytes with optional K/M/G suffix): %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("size must be non-negative: %q", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("size overflows: %q", s)
	}
	return n * mult, nil
}

// FormatSize renders a byte count the way ParseSize reads it, using the
// largest suffix that divides it exactly.
func FormatSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
