package govern

import (
	"bytes"
	"strings"
	"testing"

	"ormprof/internal/trace"
)

func TestParseSize(t *testing.T) {
	ok := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"123", 123},
		{"4K", 4 << 10},
		{"4k", 4 << 10},
		{"8M", 8 << 20},
		{"8m", 8 << 20},
		{"2G", 2 << 30},
		{"2g", 2 << 30},
		{" 16K ", 16 << 10},
	}
	for _, c := range ok {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, in := range []string{"", "x", "-1", "-4K", "K", "1.5M", "9999999999999G"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) succeeded, want error", in)
		}
	}
}

func TestFormatSizeRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, 1023, 1024, 4096, 1 << 20, 3 << 30, 1<<20 + 1} {
		s := FormatSize(n)
		got, err := ParseSize(strings.TrimSuffix(s, "B"))
		if err != nil {
			t.Fatalf("ParseSize(FormatSize(%d) = %q): %v", n, s, err)
		}
		if got != n {
			t.Errorf("round trip %d -> %q -> %d", n, s, got)
		}
	}
}

func TestBudgetTree(t *testing.T) {
	global := NewBudget(1000)
	a := global.Sub(0)
	b := global.Sub(400)

	a.Add(500)
	if got := global.Used(); got != 500 {
		t.Fatalf("global used = %d, want 500 after child add", got)
	}
	if a.Over() {
		t.Fatal("unlimited child over before global watermark")
	}
	b.Add(300)
	// b is below its own watermark (350) but global is at 800 ≥ 875? No:
	// global watermark is 1000-125 = 875, used 800 — still under.
	if b.Over() {
		t.Fatal("over at 800/1000 global, 300/400 child")
	}
	b.Add(60)
	// b at 360 ≥ its watermark 350.
	if !b.Over() {
		t.Fatal("child not over at 360/400")
	}
	a.Add(100)
	// global at 960 ≥ 875: every child sees Over via the parent chain.
	if !a.Over() {
		t.Fatal("unlimited child not over once global watermark reached")
	}
	a.Add(-700)
	if a.Over() {
		t.Fatal("still over after release")
	}
	if got := global.Peak(); got != 960 {
		t.Fatalf("global peak = %d, want 960", got)
	}
}

// growMode is a Mode whose footprint grows by a fixed amount per event —
// a deterministic stand-in for an exploding grammar.
type growMode struct {
	perEvent int64
	foot     int64
	events   int
}

func (m *growMode) Emit(trace.Event) { m.events++; m.foot += m.perEvent }
func (m *growMode) Footprint() int64 { return m.foot }

func access(i, addr uint64) trace.Event {
	return trace.Event{Kind: trace.EvAccess, Instr: trace.InstrID(i), Addr: trace.Addr(addr), Size: 8}
}

func alloc(site, addr uint64, size uint32) trace.Event {
	return trace.Event{Kind: trace.EvAlloc, Site: trace.SiteID(site), Addr: trace.Addr(addr), Size: size}
}

func TestLadderStepsDownAndStaysUnderLimit(t *testing.T) {
	const limit = 10_000
	budget := NewBudget(limit)
	l := NewLadder(Config{
		Budget: budget,
		Seed:   1,
		Full:   func() Mode { return &growMode{perEvent: 100} },
	})
	for i, e := range stream(4000) {
		l.Emit(e)
		if u := budget.Used(); u > limit {
			t.Fatalf("accounted usage %d exceeds limit %d at event %d", u, limit, i+1)
		}
	}
	// Both growing full modes (initial and sampled) must have been
	// discarded. The sketch rungs' fixed footprints exceed this tiny
	// budget, so the ladder must have skipped them (never spiking the
	// accounted peak) and bottomed out at stride-only or below.
	if l.Rung().Rank() < RungStrideOnly.Rank() {
		t.Fatalf("rung = %s, want at least stride-only", l.Rung())
	}
	steps := l.Steps()
	if len(steps) < 2 {
		t.Fatalf("got %d steps, want at least 2", len(steps))
	}
	if steps[0].From != RungFull || steps[0].To != RungSampled {
		t.Fatalf("first step %v, want full -> object-sampled", steps[0])
	}
	if budget.Peak() > limit {
		t.Fatalf("accounted peak %d exceeds limit %d", budget.Peak(), limit)
	}
	err := l.Err()
	de, ok := err.(*DegradedError)
	if !ok {
		t.Fatalf("Err() = %T %v, want *DegradedError", err, err)
	}
	if de.Rung != l.Rung() || de.Limit != limit {
		t.Fatalf("DegradedError = %+v, want rung %s limit %d", de, l.Rung(), limit)
	}
	if !strings.Contains(de.Error(), "degraded to") {
		t.Fatalf("error text %q", de.Error())
	}
}

func TestLadderUndegraded(t *testing.T) {
	l := NewLadder(Config{Full: func() Mode { return &growMode{perEvent: 1} }})
	for i := 0; i < 100; i++ {
		l.Emit(access(1, uint64(i)))
	}
	if l.Rung() != RungFull {
		t.Fatalf("rung = %s, want full", l.Rung())
	}
	if err := l.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}

// stream returns a deterministic adversarial-ish mixed event stream:
// alloc-heavy so the sampled rung's inner pipeline keeps growing (some
// sites stay in the sampled subset), with irregular access addresses so
// the stride rung keeps minting histogram bins.
func stream(n int) []trace.Event {
	evs := make([]trace.Event, 0, n)
	x := uint64(0x243f6a8885a308d3)
	for i := 0; i < n; i++ {
		x = mix(x + uint64(i))
		if i%2 == 0 {
			evs = append(evs, alloc(x%37, 0x1000+x%100000*64, 64))
		} else {
			evs = append(evs, access(x%31, 0x1000+x%100000*64))
		}
	}
	return evs
}

func runLadder(t *testing.T, evs []trace.Event) (*Ladder, string) {
	t.Helper()
	l := NewLadder(Config{
		Budget: NewBudget(50_000),
		Seed:   42,
		Full:   func() Mode { return &growMode{perEvent: 200} },
	})
	for _, e := range evs {
		l.Emit(e)
	}
	var buf bytes.Buffer
	if err := l.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	return l, buf.String()
}

func TestLadderDeterminism(t *testing.T) {
	evs := stream(3000)
	l1, r1 := runLadder(t, evs)
	l2, r2 := runLadder(t, evs)
	if r1 != r2 {
		t.Fatalf("reports differ:\n%s\n---\n%s", r1, r2)
	}
	s1, s2 := l1.Steps(), l2.Steps()
	if len(s1) != len(s2) {
		t.Fatalf("step counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestSiteFilterDropsUnsampledAccesses(t *testing.T) {
	inner := &growMode{perEvent: 1}
	f := newSiteFilter(7, 2, inner)
	var kept, dropped trace.SiteID
	found := 0
	for s := trace.SiteID(0); found < 2 && s < 1000; s++ {
		if f.keep(s) && found == 0 {
			kept, found = s, found+1
		} else if !f.keep(s) {
			dropped = s
			if found == 1 {
				found++
			}
		}
	}
	if found < 2 {
		t.Fatal("could not find both a kept and a dropped site")
	}
	f.Emit(alloc(uint64(kept), 0x1000, 64))
	f.Emit(alloc(uint64(dropped), 0x2000, 64))
	f.Emit(access(1, 0x1010))                             // inside the sampled object
	f.Emit(access(1, 0x2010))                             // inside the dropped object
	f.Emit(access(1, 0x9000))                             // outside everything
	f.Emit(trace.Event{Kind: trace.EvFree, Addr: 0x2000}) // untracked free
	f.Emit(trace.Event{Kind: trace.EvFree, Addr: 0x1000}) // tracked free
	// Forwarded: kept alloc, in-bounds access, tracked free.
	if inner.events != 3 {
		t.Fatalf("inner saw %d events, want 3", inner.events)
	}
}

func TestSnapshotRoundTripPerRung(t *testing.T) {
	evs := stream(12000)
	full := func() Mode { return &growMode{perEvent: 150} }
	for _, target := range []Rung{RungSampled, RungSketchStride, RungSketchCounters, RungStrideOnly, RungCounters} {
		l := NewLadder(Config{Seed: 9, Full: full})
		for l.Rung() != target {
			if !l.ForceStep() {
				t.Fatalf("hit the floor before reaching rung %s", target)
			}
		}
		// Run on at the target rung for a while (the budget is unlimited,
		// so the rung is stable), then snapshot and restore.
		i := 2000
		for j := 0; j < i; j++ {
			l.Emit(evs[j])
		}
		snap := l.Snapshot()
		var fullMode Mode
		if target == RungSampled {
			// The restored inner pipeline: growMode state is its footprint,
			// which the restore re-accounts; a fresh one suffices for the
			// govern-owned state this test exercises.
			fullMode = &growMode{perEvent: 150, foot: l.filter.inner.Footprint()}
		}
		r, err := RestoreLadder(Config{Full: full}, snap, fullMode)
		if err != nil {
			t.Fatalf("rung %s: RestoreLadder: %v", target, err)
		}
		if r.Rung() != target || r.Events() != l.Events() {
			t.Fatalf("rung %s: restored (%s, %d events), want (%s, %d)",
				target, r.Rung(), r.Events(), target, l.Events())
		}
		for j := i; j < len(evs); j++ {
			l.Emit(evs[j])
			r.Emit(evs[j])
		}
		if l.Rung() != r.Rung() || l.Events() != r.Events() {
			t.Fatalf("rung %s: diverged after restore: (%s, %d) vs (%s, %d)",
				target, l.Rung(), l.Events(), r.Rung(), r.Events())
		}
		if !target.FullPipeline() {
			// Below the sampled rung the whole output lives in the ladder:
			// reports must be byte-identical.
			var want, got bytes.Buffer
			if err := l.WriteReport(&want); err != nil {
				t.Fatal(err)
			}
			if err := r.WriteReport(&got); err != nil {
				t.Fatal(err)
			}
			if want.String() != got.String() {
				t.Fatalf("rung %s: reports differ after restore:\n%s\n---\n%s",
					target, want.String(), got.String())
			}
		} else if len(l.Steps()) != len(r.Steps()) {
			t.Fatalf("rung %s: step history diverged after restore", target)
		}
	}
}

func TestRestoreNilSnapshotWrapsFullMode(t *testing.T) {
	m := &growMode{perEvent: 1}
	l, err := RestoreLadder(Config{Full: func() Mode { return &growMode{perEvent: 1} }}, nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rung() != RungFull || l.Mode() != Mode(m) {
		t.Fatalf("nil-snapshot restore: rung %s, mode %p (want %p)", l.Rung(), l.Mode(), m)
	}
}

// TestRestoreNilSnapshotIgnoresStartRung is the approx-mode resume
// regression: an -approx session restored from an old checkpoint written
// before ladder snapshots existed (snap == nil, a rebuilt full pipeline
// in hand) must resume at RungFull with that pipeline — honouring
// cfg.StartRung would silently discard the restored state — and must
// keep profiling without panicking.
func TestRestoreNilSnapshotIgnoresStartRung(t *testing.T) {
	m := &growMode{perEvent: 1}
	l, err := RestoreLadder(Config{
		Budget:    NewBudget(0),
		StartRung: RungSketchStride,
		Full:      func() Mode { return &growMode{perEvent: 1} },
	}, nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rung() != RungFull || l.Mode() != Mode(m) {
		t.Fatalf("nil-snapshot restore with StartRung set: rung %s, mode %p (want full, %p)", l.Rung(), l.Mode(), m)
	}
	for i := 0; i < 100; i++ {
		l.Emit(trace.Event{Kind: trace.EvAccess, Instr: trace.InstrID(i), Addr: trace.Addr(64 * i)})
	}
	if m.events != 100 {
		t.Fatalf("restored full mode saw %d events, want 100", m.events)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("unbudgeted restored session reports degradation: %v", err)
	}
}

func TestForceStep(t *testing.T) {
	l := NewLadder(Config{Full: func() Mode { return &growMode{} }})
	// With an unlimited budget every rung is affordable, so forced steps
	// walk the full ladder order.
	want := []Rung{RungSampled, RungSketchStride, RungSketchCounters, RungStrideOnly, RungCounters}
	for i, r := range want {
		if !l.ForceStep() {
			t.Fatalf("ForceStep %d returned false", i)
		}
		if l.Rung() != r {
			t.Fatalf("after ForceStep %d: rung = %s, want %s", i, l.Rung(), r)
		}
	}
	if l.ForceStep() {
		t.Fatal("ForceStep at the floor returned true")
	}
}
