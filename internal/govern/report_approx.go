package govern

import (
	"fmt"
	"io"

	"ormprof/internal/sketch"
	"ormprof/internal/stride"
)

// This file renders the sketch rungs' report sections. Both the live
// ladder report (WriteReport) and the cluster merge plane
// (WriteApproxReport on merged snapshots) go through the same writers,
// so byte comparisons across worker counts, restarts, and shard counts
// are meaningful. Every section leads with its error accounting — an
// approximate report never trades correctness silently.

// writeSketchStrideReport renders the sketch-stride section from a
// snapshot.
func writeSketchStrideReport(w io.Writer, s *SketchStrideSnapshot) error {
	strC, err := sketch.RestoreCountMin(s.Stride)
	if err != nil {
		return err
	}
	totC, err := sketch.RestoreCountMin(s.Totals)
	if err != nil {
		return err
	}
	dig, err := sketch.RestoreBloom(s.Digram)
	if err != nil {
		return err
	}
	pairs, err := sketch.RestoreTopK(s.Pairs)
	if err != nil {
		return err
	}
	hot, err := sketch.RestoreTopK(s.Hot)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "approx sketch-stride\nsamples %d\nepsilon %.6g\ndelta %.6g\nerror-bound %.6g\n",
		strC.Total(), strC.Epsilon(), strC.Delta(), strC.ErrorBound()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "digram-adds %d\ndigram-distinct %d\ndigram-fpp %.6g\n",
		dig.Adds(), dig.Distinct(), dig.FPP()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "topk %d\ntopk-bound %d\n", pairs.K(), pairs.ErrorBound()); err != nil {
		return err
	}

	// Strongly-strided pairs: the sketch analog of the stride report.
	// A tracked (instruction, stride) pair is strong when the sketch
	// estimates the stride to cover ≥ StrongThreshold of the
	// instruction's stride samples, over a minimum sample count — the
	// same rule the exact profiler applies.
	type strong struct {
		instr  uint64
		stride int64
		est    uint64
		frac   float64
	}
	var strongs []strong
	for _, e := range pairs.Entries() {
		tot := totC.Estimate(sketch.Key{A: e.Key.A})
		if tot < stride.MinSample {
			continue
		}
		est := strC.Estimate(e.Key)
		frac := float64(est) / float64(tot)
		if frac > 1 {
			frac = 1
		}
		if frac < stride.StrongThreshold {
			continue
		}
		strongs = append(strongs, strong{instr: e.Key.A, stride: int64(e.Key.B), est: est, frac: frac})
	}
	if _, err := fmt.Fprintf(w, "strided %d\n", len(strongs)); err != nil {
		return err
	}
	for _, p := range strongs {
		if _, err := fmt.Fprintf(w, "pair %d %d est %d frac %.4f\n", p.instr, p.stride, p.est, p.frac); err != nil {
			return err
		}
	}
	hotEnts := hot.Entries()
	if _, err := fmt.Fprintf(w, "hot %d bound %d\n", len(hotEnts), hot.ErrorBound()); err != nil {
		return err
	}
	for _, e := range hotEnts {
		if _, err := fmt.Fprintf(w, "line %#x count %d err %d\n", e.Key.A<<6, e.Count, e.Err); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "allocs %d\nfrees %d\nloads %d\nstores %d\n", s.Allocs, s.Frees, s.Loads, s.Stores)
	return err
}

// writeSketchCountersReport renders the sketch-counters section from a
// snapshot.
func writeSketchCountersReport(w io.Writer, s *SketchCountersSnapshot) error {
	sites, err := sketch.RestoreCountMin(s.Sites)
	if err != nil {
		return err
	}
	hot, err := sketch.RestoreTopK(s.Hot)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "approx sketch-counters\nsamples %d\nepsilon %.6g\ndelta %.6g\nerror-bound %.6g\n",
		sites.Total(), sites.Epsilon(), sites.Delta(), sites.ErrorBound()); err != nil {
		return err
	}
	hotEnts := hot.Entries()
	if _, err := fmt.Fprintf(w, "topk %d\ntopk-bound %d\nhot-sites %d\n", hot.K(), hot.ErrorBound(), len(hotEnts)); err != nil {
		return err
	}
	for _, e := range hotEnts {
		if _, err := fmt.Fprintf(w, "site %d count %d err %d\n", e.Key.A, e.Count, e.Err); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "allocs %d\nfrees %d\nloads %d\nstores %d\n", s.Allocs, s.Frees, s.Loads, s.Stores)
	return err
}

// WriteApproxReport writes the cluster merge plane's approximate report:
// the given merged snapshots (either may be nil), preceded by a header
// naming how many per-session sketches were folded in. The sections are
// rendered by the same writers as a single session's .govern artifact,
// so the merged report carries the same error-bound fields.
func WriteApproxReport(w io.Writer, strideSnap *SketchStrideSnapshot, counterSnap *SketchCountersSnapshot, sessions int) error {
	if _, err := fmt.Fprintf(w, "# approximate profile (merged)\nsessions %d\n", sessions); err != nil {
		return err
	}
	if strideSnap != nil {
		if err := writeSketchStrideReport(w, strideSnap); err != nil {
			return err
		}
	}
	if counterSnap != nil {
		if err := writeSketchCountersReport(w, counterSnap); err != nil {
			return err
		}
	}
	return nil
}
