package govern

import (
	"ormprof/internal/soabtree"
	"ormprof/internal/trace"
)

// siteFilter implements RungSampled: it passes through the events of a
// deterministic, seeded subset of allocation sites and drops everything
// else. Accesses are filtered against the *sampled live objects* (a floor
// search in a flat B+Tree keyed by start address, mirroring the OMC), not just
// the alloc events: an access outside every sampled object is dropped
// entirely rather than forwarded as an unmapped raw address, because the
// raw-address stream is exactly what makes grammars explode (Fig. 5) —
// forwarding it would defeat the step-down.
type siteFilter struct {
	seed  uint64
	mod   uint64
	inner Mode
	live  soabtree.Map // sampled object start address -> size
}

func newSiteFilter(seed, mod uint64, inner Mode) *siteFilter {
	return &siteFilter{seed: seed, mod: mod, inner: inner}
}

// mix is splitmix64's finalizer: a cheap, well-distributed hash so the
// kept subset is insensitive to site-ID clustering.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keep reports whether a site is in the sampled subset — a pure function
// of (seed, site), so every worker count and every resumed run keeps the
// same sites.
func (f *siteFilter) keep(site trace.SiteID) bool {
	if f.mod <= 1 {
		return true
	}
	return mix(f.seed^uint64(site))%f.mod == 0
}

// Emit implements trace.Sink.
func (f *siteFilter) Emit(e trace.Event) {
	switch e.Kind {
	case trace.EvAlloc:
		if !f.keep(e.Site) {
			return
		}
		f.live.Set(uint64(e.Addr), uint64(e.Size))
	case trace.EvFree:
		if _, ok := f.live.Get(uint64(e.Addr)); !ok {
			return
		}
		f.live.Delete(uint64(e.Addr))
	case trace.EvAccess:
		start, size, ok := f.live.Floor(uint64(e.Addr))
		if !ok || uint64(e.Addr) >= start+size {
			return
		}
	}
	f.inner.Emit(e)
}

// NameSite forwards the site-name table to the inner mode.
func (f *siteFilter) NameSite(site trace.SiteID, name string) {
	if n, ok := f.inner.(trace.SiteNamer); ok {
		n.NameSite(site, name)
	}
}

// filterEntryBytes approximates one live-object entry in the filter's
// tree (key + value + node share). Logical-count accounting, like the
// OMC's (see internal/omc/footprint.go): rung decisions must resume
// deterministically, so physical arena capacity is not charged.
const filterEntryBytes = 32

// Footprint implements Mode.
func (f *siteFilter) Footprint() int64 {
	return f.inner.Footprint() + int64(f.live.Len())*filterEntryBytes + 64
}
