package govern

import (
	"fmt"
	"io"
	"sort"

	"ormprof/internal/stride"
	"ormprof/internal/trace"
)

// WriteReport writes the deterministic governance report: which mode
// produced the output, the budget, and the full step history — plus, at
// the rungs whose output lives inside the ladder (stride-only and
// per-site counters), that output itself. The daemon and the CLI tools
// both use this one serialization, so byte comparisons across worker
// counts and across a kill/restart are meaningful.
func (l *Ladder) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# resource governance\nmode %s\nbudget %d\nused %d\nsteps %d\n",
		l.rung, l.cfg.Budget.EffectiveLimit(), l.cfg.Budget.Used(), len(l.steps)); err != nil {
		return err
	}
	for i, s := range l.steps {
		if _, err := fmt.Fprintf(w, "step %d %s -> %s event %d used %d\n",
			i+1, s.From, s.To, s.Event, s.Used); err != nil {
			return err
		}
	}
	switch l.rung {
	case RungSketchStride:
		if err := writeSketchStrideReport(w, l.sketchStr.snapshot()); err != nil {
			return err
		}
	case RungSketchCounters:
		if err := writeSketchCountersReport(w, l.sketchCtr.snapshot()); err != nil {
			return err
		}
	case RungStrideOnly:
		strided := l.stride.ideal.StronglyStrided()
		if _, err := fmt.Fprintf(w, "stride %d\n", len(strided)); err != nil {
			return err
		}
		for _, id := range stride.SortedIDs(strided) {
			in := strided[id]
			if _, err := fmt.Fprintf(w, "%d %d %.4f\n", id, in.Stride, in.Frac); err != nil {
				return err
			}
		}
	case RungCounters:
		c := l.counters
		sites := make([]trace.SiteID, 0, len(c.siteAllocs))
		for site := range c.siteAllocs {
			sites = append(sites, site)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		if _, err := fmt.Fprintf(w, "alloc-sites %d\n", len(sites)); err != nil {
			return err
		}
		for _, site := range sites {
			if _, err := fmt.Fprintf(w, "site %d allocs %d\n", site, c.siteAllocs[site]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "frees %d\nloads %d\nstores %d\n", c.frees, c.loads, c.stores); err != nil {
			return err
		}
	}
	return nil
}
