package govern

import (
	"ormprof/internal/stride"
	"ormprof/internal/trace"
)

// strideMode implements RungStrideOnly: the lossless stride profiler
// alone. Its state is O(distinct instructions × distinct strides), far
// below the grammars' O(stream irregularity).
type strideMode struct {
	ideal *stride.Ideal
}

func newStrideMode() *strideMode {
	return &strideMode{ideal: stride.NewIdeal()}
}

func (m *strideMode) Emit(e trace.Event) { m.ideal.Emit(e) }
func (m *strideMode) Footprint() int64   { return m.ideal.Footprint() }

// countersMode implements RungCounters, the ladder's floor: per-site
// allocation counts plus access/load/store/free totals. Its state is
// O(distinct allocation sites).
type countersMode struct {
	siteAllocs map[trace.SiteID]uint64
	frees      uint64
	loads      uint64
	stores     uint64
	foot       int64
}

func newCountersMode() *countersMode {
	return &countersMode{siteAllocs: make(map[trace.SiteID]uint64)}
}

// counterEntryBytes approximates one per-site map entry.
const counterEntryBytes = 48

func (m *countersMode) Emit(e trace.Event) {
	switch e.Kind {
	case trace.EvAlloc:
		if _, ok := m.siteAllocs[e.Site]; !ok {
			m.foot += counterEntryBytes
		}
		m.siteAllocs[e.Site]++
	case trace.EvFree:
		m.frees++
	case trace.EvAccess:
		if e.Store {
			m.stores++
		} else {
			m.loads++
		}
	}
}

func (m *countersMode) Footprint() int64 { return 96 + m.foot }
