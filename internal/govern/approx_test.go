package govern

// Property tests for the sketch rungs' error bounds: for each of the nine
// workloads (the paper's seven Table-1 benchmarks plus hotcold and
// chase), a sketch-rung run is compared against an exact oracle that
// applies the identical deterministic sampling rules with unbounded
// maps. The claims under test are the structures' advertised guarantees:
//
//   - count-min: estimate ≥ true, and ≤ true + εN for all but a ≤ δ
//     fraction of keys (ε = e/width, δ = e^−depth);
//   - bloom: no false negatives on seen digrams;
//   - space-saving top-K: true ∈ [Count − Err, Count] for every tracked
//     key, and every key with true count above the N/k bound is tracked;
//   - exact scalars (loads/stores/allocs/frees) match exactly;
//   - the rung's footprint is a constant, independent of trace length;
//   - a mid-stream ORMCKPT-style snapshot (gob) resumes byte-identically.
//
// Everything is deterministic — fixed workload seeds, the fixed package
// sketch seed — so a violation is a real regression, never a flake.

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"ormprof/internal/memsim"
	"ormprof/internal/sketch"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// nineWorkloads is the paper's Table-1 set plus the two synthetic access
// patterns the acceptance list names.
func nineWorkloads() []string {
	return append(workloads.Names(), "hotcold", "chase")
}

// workloadEvents runs the named workload and returns its event stream.
func workloadEvents(t *testing.T, name string) []trace.Event {
	t.Helper()
	prog, err := workloads.New(name, workloads.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var events []trace.Event
	memsim.Run(prog, trace.SinkFunc(func(e trace.Event) { events = append(events, e) }))
	return events
}

// exactOracle mirrors sketchStrideMode's deterministic sampling rules
// (the direct-mapped last-address table, the digram chain) with unbounded
// exact maps — the ground truth the sketches' bounds are checked against.
type exactOracle struct {
	cfg                          SketchConfig
	last                         []lastSlot
	mask                         uint64
	prev                         uint64
	strides                      map[sketch.Key]uint64
	totals                       map[sketch.Key]uint64
	digrams                      map[sketch.Key]bool
	lines                        map[sketch.Key]uint64
	sites                        map[sketch.Key]uint64
	loads, stores, allocs, frees uint64
}

func newExactOracle() *exactOracle {
	cfg := SketchConfig{}.withDefaults()
	o := &exactOracle{
		cfg:     cfg,
		last:    make([]lastSlot, ceilPow2(cfg.LastSlots)),
		strides: make(map[sketch.Key]uint64),
		totals:  make(map[sketch.Key]uint64),
		digrams: make(map[sketch.Key]bool),
		lines:   make(map[sketch.Key]uint64),
		sites:   make(map[sketch.Key]uint64),
	}
	o.mask = uint64(len(o.last)) - 1
	return o
}

func (o *exactOracle) Emit(e trace.Event) {
	switch e.Kind {
	case trace.EvAlloc:
		o.allocs++
		o.sites[sketch.Key{A: uint64(e.Site)}]++
		return
	case trace.EvFree:
		o.frees++
		return
	}
	if e.Store {
		o.stores++
	} else {
		o.loads++
	}
	instr := uint64(e.Instr)
	addr := uint64(e.Addr)
	if o.prev != 0 {
		o.digrams[sketch.Key{A: o.prev - 1, B: instr}] = true
	}
	o.prev = instr + 1
	slot := &o.last[mix(o.cfg.Seed^instr)&o.mask]
	if slot.instr == instr+1 {
		k := sketch.Key{A: instr, B: addr - slot.addr}
		o.strides[k]++
		o.totals[sketch.Key{A: instr}]++
	}
	slot.instr = instr + 1
	slot.addr = addr
	o.lines[sketch.Key{A: addr >> 6}]++
}

// checkCountMin asserts the ε/δ contract of a count-min sketch against
// the exact counts: never an underestimate, and overestimates beyond εN
// on at most a δ fraction of the queried keys.
func checkCountMin(t *testing.T, label string, cm *sketch.CountMin, exact map[sketch.Key]uint64) {
	t.Helper()
	bound := cm.ErrorBound()
	violations, queries := 0, 0
	for k, want := range exact {
		queries++
		est := cm.Estimate(k)
		if est < want {
			t.Fatalf("%s: estimate(%v) = %d underestimates true count %d", label, k, est, want)
		}
		if float64(est-want) > bound {
			violations++
		}
	}
	if queries == 0 {
		t.Fatalf("%s: oracle saw no keys — workload exercises nothing", label)
	}
	if allowed := math.Max(1, cm.Delta()*float64(queries)); float64(violations) > allowed {
		t.Errorf("%s: %d/%d keys exceed the εN=%.1f bound (δ allows %.1f)",
			label, violations, queries, bound, allowed)
	}
}

// TestSketchStrideErrorBounds drives the sketch-stride rung and the
// exact oracle over every workload and checks each structure's bound.
func TestSketchStrideErrorBounds(t *testing.T) {
	for _, name := range nineWorkloads() {
		t.Run(name, func(t *testing.T) {
			events := workloadEvents(t, name)
			l := NewLadder(Config{Budget: NewBudget(0), StartRung: RungSketchStride})
			oracle := newExactOracle()
			for _, e := range events {
				l.Emit(e)
				oracle.Emit(e)
			}
			m := l.sketchStr
			if m == nil {
				t.Fatalf("ladder not on sketch-stride rung: %s", l.Rung())
			}
			if m.loads != oracle.loads || m.stores != oracle.stores ||
				m.allocs != oracle.allocs || m.frees != oracle.frees {
				t.Errorf("scalars diverged: %d/%d/%d/%d, want %d/%d/%d/%d",
					m.loads, m.stores, m.allocs, m.frees,
					oracle.loads, oracle.stores, oracle.allocs, oracle.frees)
			}

			checkCountMin(t, "stride histogram", m.strC, oracle.strides)
			checkCountMin(t, "instruction totals", m.totC, oracle.totals)

			// Bloom: a seen digram can never test negative.
			for k := range oracle.digrams {
				if !m.dig.Test(k) {
					t.Fatalf("digram bloom false negative on %v", k)
				}
			}

			// Top-K: every tracked key's true count sits inside
			// [Count − Err, Count]; every key heavier than the N/k bound
			// is tracked.
			hotBound := m.hot.ErrorBound()
			tracked := make(map[sketch.Key]bool)
			for _, e := range m.hot.Entries() {
				tracked[e.Key] = true
				want := oracle.lines[e.Key]
				if want > e.Count || want < e.Count-e.Err {
					t.Errorf("hot line %v: true %d outside [%d, %d]",
						e.Key, want, e.Count-e.Err, e.Count)
				}
			}
			for k, n := range oracle.lines {
				if n > hotBound && !tracked[k] {
					t.Errorf("hot line %v with true count %d > bound %d not tracked", k, n, hotBound)
				}
			}
		})
	}
}

// TestSketchCountersErrorBounds: the same contract for the
// sketch-counters rung's per-site allocation sketch and hot-site top-K.
func TestSketchCountersErrorBounds(t *testing.T) {
	for _, name := range nineWorkloads() {
		t.Run(name, func(t *testing.T) {
			events := workloadEvents(t, name)
			l := NewLadder(Config{Budget: NewBudget(0), StartRung: RungSketchCounters})
			oracle := newExactOracle()
			for _, e := range events {
				l.Emit(e)
				oracle.Emit(e)
			}
			m := l.sketchCtr
			if m == nil {
				t.Fatalf("ladder not on sketch-counters rung: %s", l.Rung())
			}
			if m.allocs != oracle.allocs || m.frees != oracle.frees {
				t.Errorf("alloc scalars diverged: %d/%d, want %d/%d",
					m.allocs, m.frees, oracle.allocs, oracle.frees)
			}
			checkCountMin(t, "site counts", m.sites, oracle.sites)
			bound := m.hot.ErrorBound()
			tracked := make(map[sketch.Key]bool)
			for _, e := range m.hot.Entries() {
				tracked[e.Key] = true
				want := oracle.sites[e.Key]
				if want > e.Count || want < e.Count-e.Err {
					t.Errorf("hot site %v: true %d outside [%d, %d]",
						e.Key, want, e.Count-e.Err, e.Count)
				}
			}
			for k, n := range oracle.sites {
				if n > bound && !tracked[k] {
					t.Errorf("hot site %v with true count %d > bound %d not tracked", k, n, bound)
				}
			}
		})
	}
}

// TestSketchFootprintFixed: the sketch rungs' accounted footprint is a
// construction-time constant — the same before any event, after a short
// stream, and after the full stream, for every workload. This is the
// bounded-memory half of the rungs' contract.
func TestSketchFootprintFixed(t *testing.T) {
	var want int64
	for _, name := range nineWorkloads() {
		events := workloadEvents(t, name)
		m := newSketchStrideMode(SketchConfig{})
		at0 := m.Footprint()
		for _, e := range events[:len(events)/10] {
			m.Emit(e)
		}
		atTenth := m.Footprint()
		for _, e := range events[len(events)/10:] {
			m.Emit(e)
		}
		atEnd := m.Footprint()
		if at0 != atTenth || atTenth != atEnd {
			t.Fatalf("%s: sketch-stride footprint moved: %d -> %d -> %d", name, at0, atTenth, atEnd)
		}
		if want == 0 {
			want = atEnd
		} else if atEnd != want {
			t.Fatalf("%s: footprint %d differs across workloads (want %d)", name, atEnd, want)
		}
	}
}

// TestSketchCheckpointResumeByteIdentical: for every workload, a ladder
// snapshotted mid-stream at the sketch-stride rung, round-tripped
// through gob (the ORMCKPT payload encoding), restored, and fed the rest
// of the stream renders a report byte-identical to the uninterrupted run.
func TestSketchCheckpointResumeByteIdentical(t *testing.T) {
	for _, name := range nineWorkloads() {
		t.Run(name, func(t *testing.T) {
			events := workloadEvents(t, name)
			cut := len(events) / 2

			ref := NewLadder(Config{Budget: NewBudget(0), StartRung: RungSketchStride})
			for _, e := range events {
				ref.Emit(e)
			}

			l := NewLadder(Config{Budget: NewBudget(0), StartRung: RungSketchStride})
			for _, e := range events[:cut] {
				l.Emit(e)
			}
			var enc bytes.Buffer
			if err := gob.NewEncoder(&enc).Encode(l.Snapshot()); err != nil {
				t.Fatal(err)
			}
			snap := new(Snapshot)
			if err := gob.NewDecoder(bytes.NewReader(enc.Bytes())).Decode(snap); err != nil {
				t.Fatal(err)
			}
			resumed, err := RestoreLadder(Config{Budget: NewBudget(0)}, snap, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range events[cut:] {
				resumed.Emit(e)
			}

			var want, got bytes.Buffer
			if err := ref.WriteReport(&want); err != nil {
				t.Fatal(err)
			}
			if err := resumed.WriteReport(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("resumed report differs from uninterrupted run")
			}
			if resumed.Err() != nil {
				t.Errorf("approx-start resume reports degradation: %v", resumed.Err())
			}
		})
	}
}
