package govern

import (
	"fmt"
	"sort"

	"ormprof/internal/sketch"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
)

// This file implements ladder snapshots for checkpoint/restore: the rung,
// the step history, and the state of the govern-owned modes. The full
// pipeline's own state (grammars, LMADs, OMCs) is snapshotted by its
// packages and stored by the caller; the ladder snapshot carries what the
// caller cannot see — which rung is active, why, and the filter/stride/
// counter state of the degraded rungs — so a resumed session continues on
// the same rung instead of silently re-escalating to full profiling.

// FilterObject is one sampled live object tracked by the RungSampled site
// filter.
type FilterObject struct {
	Start uint64
	Size  uint32
}

// SiteCount is one per-site allocation counter.
type SiteCount struct {
	Site   trace.SiteID
	Allocs uint64
}

// CountersSnapshot is the RungCounters state.
type CountersSnapshot struct {
	Sites  []SiteCount // sorted by site
	Frees  uint64
	Loads  uint64
	Stores uint64
}

// LastSlot is one entry of the sketch-stride rung's direct-mapped
// last-address table. Instr is the instruction ID plus one; 0 marks an
// empty slot.
type LastSlot struct {
	Instr uint64
	Addr  uint64
}

// SketchStrideSnapshot is the RungSketchStride state: every sketch plus
// the mid-stream scalars the mode needs to continue byte-identically.
type SketchStrideSnapshot struct {
	Config SketchConfig
	Stride *sketch.CountMinSnapshot
	Totals *sketch.CountMinSnapshot
	Digram *sketch.BloomSnapshot
	Pairs  *sketch.TopKSnapshot
	Hot    *sketch.TopKSnapshot
	Last   []LastSlot
	Prev   uint64 // previous access instruction + 1; 0 = none
	Loads  uint64
	Stores uint64
	Allocs uint64
	Frees  uint64
}

// SketchCountersSnapshot is the RungSketchCounters state.
type SketchCountersSnapshot struct {
	Config SketchConfig
	Sites  *sketch.CountMinSnapshot
	Hot    *sketch.TopKSnapshot
	Loads  uint64
	Stores uint64
	Allocs uint64
	Frees  uint64
}

// Snapshot is the ladder's complete resumable state.
type Snapshot struct {
	Rung      Rung
	Steps     []Step
	Events    uint64
	Seed      uint64
	SampleMod uint64
	// StartRung records the configured starting rung (approximate mode),
	// so a resumed session keeps treating it as its baseline rather than
	// as degradation.
	StartRung Rung

	// Filter holds the sampled live objects, present at RungSampled.
	Filter []FilterObject
	// SketchStride holds the sketch state, present at RungSketchStride.
	SketchStride *SketchStrideSnapshot
	// SketchCounters holds the sketch state, present at RungSketchCounters.
	SketchCounters *SketchCountersSnapshot
	// Stride holds the stride profiler, present at RungStrideOnly.
	Stride *stride.Snapshot
	// Counters holds the per-site counters, present at RungCounters.
	Counters *CountersSnapshot
}

// Snapshot captures the ladder's state. The full-pipeline mode active at
// RungFull/RungSampled is not included — snapshot it separately.
func (l *Ladder) Snapshot() *Snapshot {
	snap := &Snapshot{
		Rung:      l.rung,
		Steps:     l.Steps(),
		Events:    l.events,
		Seed:      l.cfg.Seed,
		SampleMod: l.cfg.SampleMod,
		StartRung: l.cfg.StartRung,
	}
	switch l.rung {
	case RungSampled:
		snap.Filter = make([]FilterObject, 0, l.filter.live.Len())
		l.filter.live.Ascend(func(start, size uint64) bool {
			snap.Filter = append(snap.Filter, FilterObject{Start: start, Size: uint32(size)})
			return true
		})
	case RungSketchStride:
		snap.SketchStride = l.sketchStr.snapshot()
	case RungSketchCounters:
		snap.SketchCounters = l.sketchCtr.snapshot()
	case RungStrideOnly:
		snap.Stride = l.stride.ideal.Snapshot()
	case RungCounters:
		c := &CountersSnapshot{
			Sites:  make([]SiteCount, 0, len(l.counters.siteAllocs)),
			Frees:  l.counters.frees,
			Loads:  l.counters.loads,
			Stores: l.counters.stores,
		}
		for site, n := range l.counters.siteAllocs {
			c.Sites = append(c.Sites, SiteCount{Site: site, Allocs: n})
		}
		sort.Slice(c.Sites, func(i, j int) bool { return c.Sites[i].Site < c.Sites[j].Site })
		snap.Counters = c
	}
	return snap
}

// RestoreLadder reconstructs a ladder from a snapshot. full is the restored
// full-pipeline mode and is required at RungFull and RungSampled (where it
// goes behind the restored site filter); it is ignored at the lower rungs,
// whose state lives in the snapshot itself. cfg.Full is still needed: a
// restored RungFull ladder that later trips builds its sampled pipeline
// with it. The restored footprint is re-accounted into cfg.Budget, so the
// budget's view of the session survives the restart.
func RestoreLadder(cfg Config, snap *Snapshot, full Mode) (*Ladder, error) {
	if snap == nil {
		if full != nil {
			// An old checkpoint with no ladder snapshot but a restored
			// full pipeline: the session was at full when it was written,
			// so it resumes at RungFull. cfg.StartRung is deliberately
			// ignored here — honouring it would discard the restored
			// pipeline state the caller just rebuilt.
			if cfg.Budget == nil {
				cfg.Budget = NewBudget(0)
			}
			if cfg.SampleMod == 0 {
				cfg.SampleMod = DefaultSampleMod
			}
			l := &Ladder{cfg: cfg, cur: full}
			l.account()
			return l, nil
		}
		return NewLadder(cfg), nil
	}
	if cfg.Budget == nil {
		cfg.Budget = NewBudget(0)
	}
	cfg.Seed = snap.Seed
	cfg.SampleMod = snap.SampleMod
	cfg.StartRung = snap.StartRung
	if cfg.SampleMod == 0 {
		cfg.SampleMod = DefaultSampleMod
	}
	l := &Ladder{
		cfg:    cfg,
		rung:   snap.Rung,
		steps:  append([]Step(nil), snap.Steps...),
		events: snap.Events,
	}
	switch snap.Rung {
	case RungFull, RungSampled:
		if full == nil {
			return nil, fmt.Errorf("govern: restore at rung %s needs the restored full mode", snap.Rung)
		}
		if snap.Rung == RungFull {
			l.cur = full
			break
		}
		l.filter = newSiteFilter(cfg.Seed, cfg.SampleMod, full)
		for _, o := range snap.Filter {
			l.filter.live.Set(o.Start, uint64(o.Size))
		}
		l.cur = l.filter
	case RungSketchStride:
		m, err := restoreSketchStrideMode(snap.SketchStride)
		if err != nil {
			return nil, fmt.Errorf("govern: restore sketch-stride mode: %w", err)
		}
		l.sketchStr = m
		l.cur = m
	case RungSketchCounters:
		m, err := restoreSketchCountersMode(snap.SketchCounters)
		if err != nil {
			return nil, fmt.Errorf("govern: restore sketch-counters mode: %w", err)
		}
		l.sketchCtr = m
		l.cur = m
	case RungStrideOnly:
		ideal, err := stride.FromSnapshot(snap.Stride)
		if err != nil {
			return nil, fmt.Errorf("govern: restore stride mode: %w", err)
		}
		l.stride = &strideMode{ideal: ideal}
		l.cur = l.stride
	case RungCounters:
		if snap.Counters == nil {
			return nil, fmt.Errorf("govern: counters rung snapshot has no counters")
		}
		c := newCountersMode()
		c.frees = snap.Counters.Frees
		c.loads = snap.Counters.Loads
		c.stores = snap.Counters.Stores
		for _, s := range snap.Counters.Sites {
			c.siteAllocs[s.Site] = s.Allocs
		}
		c.foot = int64(len(c.siteAllocs)) * counterEntryBytes
		l.counters = c
		l.cur = c
	default:
		return nil, fmt.Errorf("govern: snapshot has unknown rung %d", snap.Rung)
	}
	l.account()
	return l, nil
}
