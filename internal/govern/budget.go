package govern

import "sync/atomic"

// Budget is an accounted memory budget. Structures report footprint deltas
// into it with Add; Over reports whether the high watermark has been
// reached. Budgets form a tree: a child created with Sub propagates every
// Add to its parent, so a server can give each session its own limit while
// a global budget watches the sum.
//
// All methods are safe for concurrent use — sessions account on their own
// goroutines while the server reads the global watermark.
//
// The trip point is a high watermark below the limit (limit minus one
// eighth), so the margin absorbs the footprint growth of the event being
// processed when the trip fires and the accounted peak never exceeds the
// limit itself.
type Budget struct {
	parent *Budget
	limit  int64
	used   atomic.Int64
	peak   atomic.Int64
}

// NewBudget creates a budget with the given limit in bytes. A limit of 0
// accounts usage but never trips.
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Sub creates a child budget with its own limit (0 = none). Usage added to
// the child also counts against this budget and all its ancestors.
func (b *Budget) Sub(limit int64) *Budget {
	return &Budget{parent: b, limit: limit}
}

// Add reports a footprint delta (positive or negative), propagating to
// ancestors.
func (b *Budget) Add(n int64) {
	for p := b; p != nil; p = p.parent {
		u := p.used.Add(n)
		for {
			pk := p.peak.Load()
			if u <= pk || p.peak.CompareAndSwap(pk, u) {
				break
			}
		}
	}
}

// Used reports the bytes currently accounted against this budget.
func (b *Budget) Used() int64 { return b.used.Load() }

// Peak reports the highest value Used has reached.
func (b *Budget) Peak() int64 { return b.peak.Load() }

// Limit reports the configured limit (0 = unlimited).
func (b *Budget) Limit() int64 { return b.limit }

// EffectiveLimit reports the tightest nonzero limit on this budget or any
// ancestor (0 = fully unlimited). A child created with Sub(0) is governed
// by its parent's limit; this is the number reports should show.
func (b *Budget) EffectiveLimit() int64 {
	limit := int64(0)
	for p := b; p != nil; p = p.parent {
		if p.limit > 0 && (limit == 0 || p.limit < limit) {
			limit = p.limit
		}
	}
	return limit
}

// Watermark reports the trip threshold: the limit minus a one-eighth
// safety margin (0 when unlimited).
func (b *Budget) Watermark() int64 {
	if b.limit <= 0 {
		return 0
	}
	return b.limit - b.limit/8
}

// Over reports whether this budget — or any ancestor — has reached its
// high watermark.
func (b *Budget) Over() bool {
	for p := b; p != nil; p = p.parent {
		if p.limit > 0 && p.used.Load() >= p.Watermark() {
			return true
		}
	}
	return false
}

// WouldOver reports whether adding n bytes would put this budget — or
// any ancestor — at its high watermark, without mutating anything (in
// particular, without recording a peak). The ladder uses it to decide
// whether a fixed-footprint rung can be entered at all.
func (b *Budget) WouldOver(n int64) bool {
	for p := b; p != nil; p = p.parent {
		if p.limit > 0 && p.used.Load()+n >= p.Watermark() {
			return true
		}
	}
	return false
}

// Heaviest picks which of several accounted parties should shed load
// first: the one with the largest usage, ties broken toward the smallest
// index. It is the one shedding order shared by a server choosing among
// its sessions and a cluster choosing among its shards, so "who degrades"
// is a deterministic property of the accounted state at every tier, never
// of goroutine or shard timing. It returns -1 for an empty slice.
func Heaviest(used []int64) int {
	best := -1
	for i, u := range used {
		if best < 0 || u > used[best] {
			best = i
		}
	}
	return best
}
