package ormprof

// Network soak: the ormpd service layer under injected network faults.
// A client pushes a recorded workload trace into a live server while the
// schedule kills and restarts the daemon mid-stream, resets connections
// mid-frame, stalls reads against deadlines, tears writes in half, and
// refuses connections outright. The contract: every fault class ends in
// either a clean retry that completes the stream or a typed degraded
// error — never a hang, an escaped panic, or a goroutine leak — and a
// killed-and-resumed run's profiles are byte-identical to an
// uninterrupted run's, at every worker count of the offline reference.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ormprof/internal/faultinject"
	"ormprof/internal/leap"
	"ormprof/internal/serve"
	"ormprof/internal/stride"
	"ormprof/internal/testutil"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/whomp"
)

// netSoakFrames records a workload and cuts it into standalone frames.
func netSoakFrames(t testing.TB, name string, batch int) (serve.SliceFrames, map[trace.SiteID]string, *trace.Buffer) {
	t.Helper()
	buf, sites, _ := recordWorkload(t, name)
	events := buf.Events
	var frames serve.SliceFrames
	for i := 0; i < len(events); i += batch {
		end := i + batch
		if end > len(events) {
			end = len(events)
		}
		f, err := tracefmt.EncodeFrame(events[i:end])
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	return frames, sites, buf
}

// offlineReference builds the three profile artifacts the offline tools
// would produce for the same events at the given worker count, through
// the same serializations the daemon uses.
func offlineReference(t testing.TB, name string, buf *trace.Buffer, sites map[trace.SiteID]string, workers int) map[string][]byte {
	t.Helper()
	wp, err := whomp.FromSource(name, buf.Source(), sites, workers)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := leap.FromSource(name, buf.Source(), sites, 0, workers)
	if err != nil {
		t.Fatal(err)
	}
	ideal := stride.NewIdeal()
	buf.Replay(ideal)
	out := make(map[string][]byte)
	var w bytes.Buffer
	if _, err := wp.WriteTo(&w); err != nil {
		t.Fatal(err)
	}
	out[".whomp"] = append([]byte(nil), w.Bytes()...)
	w.Reset()
	if _, err := lp.WriteTo(&w); err != nil {
		t.Fatal(err)
	}
	out[".leap"] = append([]byte(nil), w.Bytes()...)
	w.Reset()
	bw := bufio.NewWriter(&w)
	if err := serve.WriteStrideReport(bw, ideal.StronglyStrided(), stride.FromLEAP(lp)); err != nil {
		t.Fatal(err)
	}
	out[".stride"] = append([]byte(nil), w.Bytes()...)
	return out
}

type netSoakServer struct {
	srv  *serve.Server
	addr string
	done chan error
}

func startNetSoakServer(t testing.TB, addr string, cfg serve.Config) *netSoakServer {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(ln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &netSoakServer{srv: srv, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { s.done <- srv.Serve() }()
	return s
}

func readProfileArtifacts(t testing.TB, dir, workload string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, ext := range []string{".whomp", ".leap", ".stride"} {
		b, err := os.ReadFile(filepath.Join(dir, workload+ext))
		if err != nil {
			t.Fatalf("artifact %s: %v", ext, err)
		}
		out[ext] = b
	}
	return out
}

// TestSoakNetKillRestartResume kills the daemon mid-stream — no goodbye,
// no flush, in-memory state gone — restarts it with -resume semantics,
// and requires the finished profiles to be byte-identical to an
// uninterrupted offline run at every worker count.
func TestSoakNetKillRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	const workload = "linkedlist"
	frames, sites, buf := netSoakFrames(t, workload, 64)
	ckDir := filepath.Join(t.TempDir(), "ck")
	outDir := filepath.Join(t.TempDir(), "out")
	cfg := serve.Config{
		CheckpointDir: ckDir, OutputDir: outDir,
		CheckpointEvery: 2, CheckpointInterval: 10 * time.Millisecond,
	}
	ccfg := serve.ClientConfig{
		SessionID: "soak-kr", Workload: workload, Sites: sites,
		MaxAttempts: 50, BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
	}

	s1 := startNetSoakServer(t, "127.0.0.1:0", cfg)
	ccfg.Addr = s1.addr
	pushDone := make(chan error, 1)
	go func() {
		_, err := serve.Push(context.Background(), ccfg, frames)
		pushDone <- err
	}()
	// Kill as soon as at least one checkpoint is durable.
	ckPath := filepath.Join(ckDir, "soak-kr.ckpt")
	waitFor := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		if time.Now().After(waitFor) {
			t.Fatal("no checkpoint appeared before the kill")
		}
		time.Sleep(time.Millisecond)
	}
	s1.srv.Kill()
	<-s1.done

	// Restart on the same address with resume; the client's retry loop
	// reconnects on its own and finishes the stream.
	rcfg := cfg
	rcfg.Resume = true
	s2 := startNetSoakServer(t, s1.addr, rcfg)
	if err := <-pushDone; err != nil {
		t.Fatalf("push across kill/restart: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s2.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-s2.done

	got := readProfileArtifacts(t, outDir, workload)
	for _, workers := range []int{1, 2, 8} {
		want := offlineReference(t, workload, buf, sites, workers)
		for ext, b := range want {
			if !bytes.Equal(got[ext], b) {
				t.Errorf("workers=%d %s: resumed daemon output differs from offline run", workers, ext)
			}
		}
	}
}

// TestSoakNetFaultClasses drives the client through every injected
// network fault class — connection resets mid-frame, stalled reads,
// partial writes, refused connections — on its first attempts, then lets
// it through. Each class must end in a clean retry, a complete stream,
// and profiles byte-identical to the offline reference.
func TestSoakNetFaultClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	const workload = "linkedlist"
	frames, sites, buf := netSoakFrames(t, workload, 64)
	want := offlineReference(t, workload, buf, sites, 2)

	classes := []struct {
		name string
		wrap func(attempt int, conn net.Conn) net.Conn
	}{
		{"reset-mid-handshake", func(a int, c net.Conn) net.Conn {
			if a <= 2 {
				return faultinject.ResetAfterBytes(c, 3)
			}
			return c
		}},
		{"reset-mid-frame", func(a int, c net.Conn) net.Conn {
			if a <= 2 {
				// Past the preamble and hello, inside the frame stream.
				return faultinject.ResetAfterBytes(c, int64(200+a*700))
			}
			return c
		}},
		{"stalled-read", func(a int, c net.Conn) net.Conn {
			if a == 1 {
				// Acks stall past the attempt timeout; the read deadline
				// must cut the stall, not hang.
				return faultinject.StallConn(c, 1, 2*time.Second)
			}
			return c
		}},
		{"partial-write", func(a int, c net.Conn) net.Conn {
			if a <= 2 {
				return faultinject.PartialWrite(c, 3)
			}
			return c
		}},
	}
	for i, tc := range classes {
		t.Run(tc.name, func(t *testing.T) {
			outDir := filepath.Join(t.TempDir(), "out")
			s := startNetSoakServer(t, "127.0.0.1:0", serve.Config{
				CheckpointDir: filepath.Join(t.TempDir(), "ck"), OutputDir: outDir,
				CheckpointEvery: 4, CheckpointInterval: 10 * time.Millisecond,
			})
			addr := s.addr
			dial := faultinject.FaultyDialer(func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 2*time.Second)
			}, tc.wrap)
			stats, err := serve.Push(context.Background(), serve.ClientConfig{
				Dial:      func(ctx context.Context) (net.Conn, error) { return dial() },
				SessionID: "soak-fault", Workload: workload, Sites: sites,
				MaxAttempts: 20, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
				AttemptTimeout: 500 * time.Millisecond, JitterSeed: int64(i + 1),
			}, frames)
			if err != nil {
				t.Fatalf("push under %s: %v", tc.name, err)
			}
			if stats.Attempts < 2 {
				t.Errorf("%s: fault did not force a retry (%d attempts)", tc.name, stats.Attempts)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.srv.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			<-s.done
			got := readProfileArtifacts(t, outDir, workload)
			for ext, b := range want {
				if !bytes.Equal(got[ext], b) {
					t.Errorf("%s %s: output differs from offline reference", tc.name, ext)
				}
			}
		})
	}
}

// TestSoakNetRefusedConnections covers the listener-refusing-accepts
// class: the first connections are accepted and immediately closed, and
// the client must retry through to a complete stream.
func TestSoakNetRefusedConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	const workload = "linkedlist"
	frames, sites, buf := netSoakFrames(t, workload, 128)
	want := offlineReference(t, workload, buf, sites, 1)

	outDir := filepath.Join(t.TempDir(), "out")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(faultinject.RefuseListener(ln, 3), serve.Config{
		CheckpointDir: filepath.Join(t.TempDir(), "ck"), OutputDir: outDir,
		CheckpointEvery: 8, CheckpointInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	stats, err := serve.Push(context.Background(), serve.ClientConfig{
		Addr: ln.Addr().String(), SessionID: "soak-refuse", Workload: workload, Sites: sites,
		MaxAttempts: 20, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		AttemptTimeout: 500 * time.Millisecond,
	}, frames)
	if err != nil {
		t.Fatalf("push through refusals: %v", err)
	}
	if stats.Attempts < 2 {
		t.Errorf("refusals did not force a retry (%d attempts)", stats.Attempts)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	got := readProfileArtifacts(t, outDir, workload)
	for ext, b := range want {
		if !bytes.Equal(got[ext], b) {
			t.Errorf("%s: output differs from offline reference", ext)
		}
	}
}

// TestSoakNetExhaustionTyped: when the network never heals, the client
// must give up with the typed ExhaustedError — the degraded exit, not a
// hang — and leave no goroutines behind.
func TestSoakNetExhaustionTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	frames, sites, _ := netSoakFrames(t, "linkedlist", 256)
	dial := faultinject.FaultyDialer(func() (net.Conn, error) {
		return nil, faultinject.ErrRefused
	}, func(int, net.Conn) net.Conn { panic("unreachable") })
	start := time.Now()
	_, err := serve.Push(context.Background(), serve.ClientConfig{
		Dial:      func(ctx context.Context) (net.Conn, error) { return dial() },
		SessionID: "soak-dead", Workload: "linkedlist", Sites: sites,
		MaxAttempts: 4, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		AttemptTimeout: 100 * time.Millisecond,
	}, frames)
	var ex *serve.ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want ExhaustedError, got %v", err)
	}
	if !errors.Is(err, faultinject.ErrRefused) {
		t.Errorf("ExhaustedError does not carry the underlying cause: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("exhaustion took %v — backoff runaway", elapsed)
	}
}
