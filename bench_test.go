// Package ormprof's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation, plus the ablations DESIGN.md calls out.
// Each benchmark runs the corresponding experiment end to end and reports
// the paper's headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. Workload size is controlled with
// -workload-scale (default 1; the paper's SPEC train runs correspond to a
// much larger scale — shapes, not absolute values, are the reproduction
// target).
package ormprof

import (
	"bytes"
	"flag"
	"fmt"
	"testing"

	"ormprof/internal/depend"
	"ormprof/internal/experiments"
	"ormprof/internal/leap"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

var benchScale = flag.Int("workload-scale", 1, "workload scale factor for benchmarks")

func benchCfg() workloads.Config {
	return workloads.Config{Scale: *benchScale, Seed: 42}
}

// BenchmarkFig5CompressionOMSGvsRASG regenerates Figure 5: the per-benchmark
// compression of the object-relative multi-dimensional Sequitur grammar
// over the conventional raw-address grammar. Paper: 22 % average gain.
func BenchmarkFig5CompressionOMSGvsRASG(b *testing.B) {
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5(benchCfg())
	}
	for _, r := range rows {
		b.ReportMetric(r.GainPct, "gain%/"+shortName(r.Benchmark))
	}
	b.ReportMetric(experiments.AverageGain(rows), "gain%/average")
}

// BenchmarkFig6LEAPDependenceError regenerates Figure 6: the LEAP
// dependence-frequency error distribution. Paper: ~75 % of dependent pairs
// correct or within 10 %.
func BenchmarkFig6LEAPDependenceError(b *testing.B) {
	var rows []experiments.DepRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Dependence(experiments.DepConfig{Workloads: benchCfg()})
	}
	f := experiments.Summarize(rows)
	b.ReportMetric(100*f.LEAPWithin10, "within10%")
	b.ReportMetric(100*f.LEAP.Exact(), "exact%")
	b.ReportMetric(float64(f.LEAP.Pairs), "pairs")
}

// BenchmarkFig7ConnorsDependenceError regenerates Figure 7: the Connors
// windowed profiler's error distribution (never overestimates, misses
// long-range dependences).
func BenchmarkFig7ConnorsDependenceError(b *testing.B) {
	var rows []experiments.DepRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Dependence(experiments.DepConfig{Workloads: benchCfg()})
	}
	f := experiments.Summarize(rows)
	b.ReportMetric(100*f.ConnWithin10, "within10%")
	b.ReportMetric(100*f.Connors.Exact(), "exact%")
	overestimated := 0.0
	for i := 11; i < depend.NumBins; i++ {
		overestimated += f.Connors.Bins[i]
	}
	b.ReportMetric(100*overestimated, "overestimated%")
}

// BenchmarkFig8DependenceComparison regenerates Figure 8: LEAP vs Connors
// average error distributions. Paper: LEAP detects 56 % more pairs correct
// or within 10 %.
func BenchmarkFig8DependenceComparison(b *testing.B) {
	var rows []experiments.DepRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Dependence(experiments.DepConfig{Workloads: benchCfg()})
	}
	f := experiments.Summarize(rows)
	b.ReportMetric(100*f.LEAPWithin10, "leap-within10%")
	b.ReportMetric(100*f.ConnWithin10, "connors-within10%")
	b.ReportMetric(f.ImprovementPct, "improvement%")
}

// BenchmarkFig9StrideScore regenerates Figure 9: the fraction of
// strongly strided instructions LEAP identifies, per benchmark.
// Paper: 88 % average.
func BenchmarkFig9StrideScore(b *testing.B) {
	var rows []experiments.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig9(benchCfg(), 0)
	}
	for _, r := range rows {
		b.ReportMetric(r.Score, "score%/"+shortName(r.Benchmark))
	}
	b.ReportMetric(experiments.AverageScore(rows), "score%/average")
}

// BenchmarkTable1LEAPMetrics regenerates Table 1: LEAP profile compression
// ratio, time dilation, and sample quality. Paper averages: 3539x, 11.5x,
// 46.5 % accesses, 40.5 % instructions.
func BenchmarkTable1LEAPMetrics(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(benchCfg(), 0)
	}
	avg := experiments.Table1Average(rows)
	b.ReportMetric(avg.Compression, "compression-x")
	b.ReportMetric(avg.Dilation, "dilation-x")
	b.ReportMetric(avg.AccPct, "accesses-captured%")
	b.ReportMetric(avg.InstrPct, "instrs-captured%")
}

// BenchmarkTable1PerBenchmark reports the per-row Table 1 numbers.
func BenchmarkTable1PerBenchmark(b *testing.B) {
	for _, name := range workloads.Names() {
		name := name
		b.Run(shortName(name), func(b *testing.B) {
			var rows []experiments.Table1Row
			for i := 0; i < b.N; i++ {
				rows = experiments.Table1(benchCfg(), 0)
			}
			for _, r := range rows {
				if r.Benchmark == name {
					b.ReportMetric(r.Compression, "compression-x")
					b.ReportMetric(r.AccPct, "accesses-captured%")
					b.ReportMetric(r.InstrPct, "instrs-captured%")
				}
			}
		})
		break // the full sweep runs once; per-row numbers come from cmd/leap
	}
}

// BenchmarkAblationAllocatorInvariance regenerates the §1 motivation
// ablation: the object-relative profile must be identical under every
// allocator policy while the raw profile varies.
func BenchmarkAblationAllocatorInvariance(b *testing.B) {
	var rows []experiments.InvarianceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AllocatorInvariance("197.parser", benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	identical, rawIdentical := 0, 0
	for _, r := range rows[1:] {
		if r.ObjectRelativeIdentical {
			identical++
		}
		if r.RawIdentical {
			rawIdentical++
		}
	}
	b.ReportMetric(float64(identical), "object-relative-identical")
	b.ReportMetric(float64(rawIdentical), "raw-identical")
}

// BenchmarkAblationLMADCap regenerates the §4.1 trade-off: LMAD budget vs
// profile size, capture, and dependence accuracy (the paper fixes 30).
func BenchmarkAblationLMADCap(b *testing.B) {
	caps := []int{5, 10, 30, 100}
	for _, c := range caps {
		c := c
		b.Run(fmt.Sprintf("cap%d", c), func(b *testing.B) {
			var rows []experiments.CapRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.LMADCapSweep("256.bzip2", benchCfg(), []int{c})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows[0].ProfileBytes), "profile-bytes")
			b.ReportMetric(rows[0].AccPct, "accesses-captured%")
			b.ReportMetric(rows[0].DepWithin10, "dep-within10%")
		})
	}
}

// BenchmarkAblationDecomposition splits WHOMP's Figure 5 win into
// translation-only and full-decomposition contributions.
func BenchmarkAblationDecomposition(b *testing.B) {
	var rows []experiments.DecompositionRow
	for i := 0; i < b.N; i++ {
		rows = experiments.DecompositionAblation(benchCfg())
	}
	var trans, full float64
	for _, r := range rows {
		trans += r.TranslationOnly
		full += r.FullDecomposition
	}
	n := float64(len(rows))
	b.ReportMetric(trans/n, "translation-only-gain%")
	b.ReportMetric(full/n, "full-decomposition-gain%")
}

// BenchmarkParallelPipeline measures the parallel profiling pipeline
// against the sequential path on a large synthetic workload: WHOMP with
// concurrent dimension-grammar workers and LEAP with instruction-sharded
// stream compression, at several worker counts. The trace is recorded once
// outside the timed region, so the benchmark isolates the profile-
// construction stage — the part the fan-out parallelizes (translation
// stays sequential but overlaps the workers). Throughput is reported as
// records/s; compare seq vs parN with benchstat. Speedup requires
// GOMAXPROCS > 1: on a single-CPU host the parallel path only adds channel
// overhead, which this benchmark then quantifies instead.
func BenchmarkParallelPipeline(b *testing.B) {
	// 181.mcf is the largest pointer-chasing workload; scale it up
	// relative to the global -workload-scale so the grammar and LMAD
	// stages dominate the per-iteration cost.
	cfg := workloads.Config{Scale: *benchScale * 4, Seed: 42}
	prog, err := workloads.New("181.mcf", cfg)
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)
	records := float64(len(buf.Accesses()))

	reportThroughput := func(b *testing.B) {
		b.ReportMetric(records*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}

	b.Run("whomp/seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := whomp.New(sites)
			buf.Replay(p)
			if got := p.Profile("bench").Records; got != uint64(records) {
				b.Fatalf("profiled %d records, want %d", got, uint64(records))
			}
		}
		reportThroughput(b)
	})
	b.Run("whomp/par4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := whomp.NewParallel(sites, 4)
			buf.Replay(p)
			if got := p.Profile("bench").Records; got != uint64(records) {
				b.Fatalf("profiled %d records, want %d", got, uint64(records))
			}
		}
		reportThroughput(b)
	})

	b.Run("leap/seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := leap.New(sites, 0)
			buf.Replay(p)
			if got := p.Profile("bench").Records; got != uint64(records) {
				b.Fatalf("profiled %d records, want %d", got, uint64(records))
			}
		}
		reportThroughput(b)
	})
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("leap/par%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := leap.NewParallel(sites, 0, workers)
				buf.Replay(p)
				if got := p.Profile("bench").Records; got != uint64(records) {
					b.Fatalf("profiled %d records, want %d", got, uint64(records))
				}
			}
			reportThroughput(b)
		})
	}
}

// BenchmarkTraceEncodeDecode measures the tracefmt codec on a recorded
// workload trace: encode and decode throughput in MB/s (b.SetBytes) plus
// the on-disk density in bytes/event. The format trades a little CPU for
// traces small enough to keep ("collect once, profile many").
func BenchmarkTraceEncodeDecode(b *testing.B) {
	prog, err := workloads.New("181.mcf", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)

	var enc bytes.Buffer
	tw := tracefmt.NewWriter(&enc, tracefmt.WithName("bench"))
	tw.SetSites(sites)
	buf.Replay(tw)
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	encoded := enc.Bytes()

	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(encoded)))
		b.ReportAllocs()
		b.ReportMetric(float64(len(encoded))/float64(buf.Len()), "bytes/event")
		for i := 0; i < b.N; i++ {
			var out bytes.Buffer
			out.Grow(len(encoded))
			w := tracefmt.NewWriter(&out, tracefmt.WithName("bench"))
			w.SetSites(sites)
			buf.Replay(w)
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			if out.Len() != len(encoded) {
				b.Fatalf("encoded %d bytes, want %d", out.Len(), len(encoded))
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(encoded)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := tracefmt.Replay(bytes.NewReader(encoded), trace.Discard)
			if err != nil {
				b.Fatal(err)
			}
			if n != buf.Len() {
				b.Fatalf("decoded %d events, want %d", n, buf.Len())
			}
		}
	})
}

// BenchmarkReplayVsInProcess compares the three ways of feeding a profiler:
// the in-process buffered stream, a materialized slice through the Source
// adapter, and a streaming replay from the encoded trace. allocs/op is the
// headline: the streaming path must stay O(frames), not O(events), proving
// replay memory is bounded by the batch size.
func BenchmarkReplayVsInProcess(b *testing.B) {
	prog, err := workloads.New("181.mcf", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)
	var enc bytes.Buffer
	tw := tracefmt.NewWriter(&enc, tracefmt.WithName("bench"))
	tw.SetSites(sites)
	buf.Replay(tw)
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	encoded := enc.Bytes()
	events := buf.Len()

	b.Run("inprocess", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lp := leap.New(sites, 0)
			buf.Replay(lp)
			if got := lp.Profile("bench").Records; got == 0 {
				b.Fatal("empty profile")
			}
		}
	})
	b.Run("slice-source", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lp := leap.New(sites, 0)
			if _, err := trace.Drain(buf.Source(), lp); err != nil {
				b.Fatal(err)
			}
			if got := lp.Profile("bench").Records; got == 0 {
				b.Fatal("empty profile")
			}
		}
	})
	b.Run("stream-replay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lp := leap.New(sites, 0)
			n, err := tracefmt.Replay(bytes.NewReader(encoded), lp)
			if err != nil {
				b.Fatal(err)
			}
			if n != events {
				b.Fatalf("replayed %d events, want %d", n, events)
			}
			if got := lp.Profile("bench").Records; got == 0 {
				b.Fatal("empty profile")
			}
		}
	})
}

func shortName(bench string) string {
	// "164.gzip" -> "gzip"
	for i := 0; i < len(bench); i++ {
		if bench[i] == '.' {
			return bench[i+1:]
		}
	}
	return bench
}
