package ormprof

// Resource-governance soak: the adversarial workload is built to make the
// WHOMP grammars grow near-linearly, so an unbounded profiling run's
// footprint dwarfs any sensible budget. The contract under test is the
// governance tentpole: with a budget, the accounted peak stays under it
// (and live heap under a matching ceiling) while the pipeline steps down
// the degradation ladder instead of growing; degraded runs still render
// partial output and exit 2; output is byte-identical across worker
// counts at every rung; and a daemon killed mid-degradation resumes on
// the same rung and finishes with byte-identical output.
//
// All budgets are calibrated at runtime from the measured per-rung peaks,
// so the test tracks the workload instead of hard-coding footprints.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"ormprof/internal/checkpoint"
	"ormprof/internal/govern"
	"ormprof/internal/serve"
	"ormprof/internal/testutil"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
)

// rungPeak measures the accounted peak of a whomp profiling run forced to
// start at the given rung, with no budget (account-only).
func rungPeak(t *testing.T, buf *trace.Buffer, sites map[trace.SiteID]string, steps int) (int64, govern.Rung) {
	t.Helper()
	lad := govern.NewLadder(govern.Config{
		Seed: 42,
		Full: func() govern.Mode { return whomp.New(sites) },
	})
	for i := 0; i < steps; i++ {
		lad.ForceStep()
	}
	buf.Replay(lad)
	return lad.Budget().Peak(), lad.Rung()
}

// rungPeakStart measures the accounted peak of a run started directly at
// a sketch rung (approximate mode), with no budget. Unlike forced
// step-downs this never transits the more expensive rungs, so the peak
// is the rung's own fixed footprint.
func rungPeakStart(t *testing.T, buf *trace.Buffer, sites map[trace.SiteID]string, start govern.Rung) (int64, govern.Rung) {
	t.Helper()
	lad := govern.NewLadder(govern.Config{
		Seed:      42,
		StartRung: start,
		Full:      func() govern.Mode { return whomp.New(sites) },
	})
	buf.Replay(lad)
	return lad.Budget().Peak(), lad.Rung()
}

// liveHeap settles the collector and reads the live heap size.
func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// governedRun replays the buffer through a budgeted whomp ladder and
// returns the ladder.
func governedRun(buf *trace.Buffer, sites map[trace.SiteID]string, budget int64) *govern.Ladder {
	lad := govern.NewLadder(govern.Config{
		Budget: govern.NewBudget(budget),
		Seed:   42,
		Full:   func() govern.Mode { return whomp.New(sites) },
	})
	buf.Replay(lad)
	return lad
}

// calibrateBudgets derives one budget per degraded rung from the measured
// per-rung peaks: twice the rung's own peak, so the ladder settles there.
// The sketch rungs' peaks are their fixed footprints — a budget of twice
// the footprint both admits the rung (the ladder's affordability check)
// and leaves it stable forever, which is the graceful-degradation
// property this soak exists to prove. The counters floor is reached with
// a budget below the sketch-counters footprint: both sketch rungs are
// then skipped as unaffordable and stride-only blows through on this
// workload. Premises that the workload must satisfy are asserted, not
// assumed.
func calibrateBudgets(t *testing.T, buf *trace.Buffer, sites map[trace.SiteID]string) (peakFull int64, budgets map[govern.Rung]int64) {
	t.Helper()
	peakFull, _ = rungPeak(t, buf, sites, 0)
	sampledPeak, r1 := rungPeak(t, buf, sites, 1)
	skStridePeak, r2 := rungPeakStart(t, buf, sites, govern.RungSketchStride)
	skCtrPeak, r3 := rungPeakStart(t, buf, sites, govern.RungSketchCounters)
	stridePeak, r4 := rungPeak(t, buf, sites, 4)
	if r1 != govern.RungSampled || r2 != govern.RungSketchStride ||
		r3 != govern.RungSketchCounters || r4 != govern.RungStrideOnly {
		t.Fatalf("forced rungs drifted: %s, %s, %s, %s", r1, r2, r3, r4)
	}
	t.Logf("peaks: full %d, sampled %d, sketch-stride %d, sketch-counters %d, stride %d",
		peakFull, sampledPeak, skStridePeak, skCtrPeak, stridePeak)
	// Each rung's peak must clear the next rung's budget watermark
	// (budget − budget/8 = 1.75x the next peak), or the ladder would
	// settle early; 2x keeps margin over that.
	if peakFull/2 < sampledPeak || sampledPeak/2 < skStridePeak || skStridePeak/2 < skCtrPeak {
		t.Fatalf("adversarial workload lost its rung separation: full %d, sampled %d, sketch-stride %d, sketch-counters %d",
			peakFull, sampledPeak, skStridePeak, skCtrPeak)
	}
	floorBudget := skCtrPeak / 2
	// The floor budget must be blown through by stride-only (else the
	// ladder settles there instead of reaching the counters floor).
	if stridePeak < 2*floorBudget {
		t.Fatalf("stride-only peak %d does not blow through the floor budget %d", stridePeak, floorBudget)
	}
	budgets = map[govern.Rung]int64{
		govern.RungSampled:        2 * sampledPeak,
		govern.RungSketchStride:   2 * skStridePeak,
		govern.RungSketchCounters: 2 * skCtrPeak,
		govern.RungCounters:       floorBudget,
	}
	// The headline ratio (the graceful-degradation acceptance bar): the
	// unbounded run needs at least 10x the budget under which the session
	// lands on a sketch rung — and a fortiori 10x the tighter ones.
	if tight := budgets[govern.RungSketchStride]; peakFull < 10*tight {
		t.Fatalf("unbounded peak %d is under 10x the sketch-stride budget %d", peakFull, tight)
	}
	return peakFull, budgets
}

// TestSoakGovernBudgetEnforced: for every rung of the ladder, a run under
// that rung's budget keeps its accounted peak within the budget and ends
// on the expected rung; the tight-budget run also keeps the process's
// live heap an order of magnitude below the unbounded run's.
func TestSoakGovernBudgetEnforced(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	buf, sites, _ := recordWorkload(t, "adversarial")
	_, budgets := calibrateBudgets(t, buf, sites)

	base := liveHeap()
	unbounded := governedRun(buf, sites, 0)
	unboundedHeap := liveHeap() - base
	if unbounded.Rung() != govern.RungFull {
		t.Fatalf("unbounded run degraded to %s", unbounded.Rung())
	}
	unbounded = nil //nolint:wastedassign // release before the governed heap measurement
	_ = unbounded

	for rung, budget := range budgets {
		lad := governedRun(buf, sites, budget)
		if lad.Rung() != rung {
			t.Errorf("budget %d: ended at %s, want %s", budget, lad.Rung(), rung)
		}
		if peak := lad.Budget().Peak(); peak > budget {
			t.Errorf("budget %d: accounted peak %d exceeds the budget", budget, peak)
		}
		if lad.Err() == nil {
			t.Errorf("budget %d: degraded run reported no DegradedError", budget)
		}
	}

	// Live-heap ceiling under the tight budget: the collector must
	// actually get the stepped-down structures back.
	tight := budgets[govern.RungCounters]
	base = liveHeap()
	lad := governedRun(buf, sites, tight)
	governedHeap := liveHeap() - base
	if lad.Rung() != govern.RungCounters {
		t.Fatalf("tight budget ended at %s", lad.Rung())
	}
	if governedHeap > unboundedHeap/4 {
		t.Errorf("governed live heap %d not well under unbounded %d", governedHeap, unboundedHeap)
	}
	if governedHeap > tight+(4<<20) {
		t.Errorf("governed live heap %d far above the %d budget", governedHeap, tight)
	}
}

// TestSoakGovernWorkersByteIdentical: a governed CLI run exits 2, renders
// the partial output plus the governance report, and produces
// byte-identical output for workers 1, 2, and 8 — at every rung.
func TestSoakGovernWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	buf, sites, encoded := recordWorkload(t, "adversarial")
	_, budgets := calibrateBudgets(t, buf, sites)
	dir := t.TempDir()
	tr := filepath.Join(dir, "adv.ormtrace")
	if err := os.WriteFile(tr, encoded, 0o644); err != nil {
		t.Fatal(err)
	}

	for rung, budget := range budgets {
		t.Run(rung.String(), func(t *testing.T) {
			var wantOut string
			var wantProfile []byte
			for _, workers := range []string{"1", "2", "8"} {
				args := []string{"-replay", tr, "-mem-budget", strconv.FormatInt(budget, 10), "-workers", workers}
				profile := ""
				if rung.FullPipeline() {
					// Same path for every worker count: the tool echoes it
					// to stdout, which must stay byte-identical.
					profile = filepath.Join(dir, rung.String()+".whomp")
					args = append(args, "-o", profile)
				}
				out := runToolExit(t, 2, "whomp", args...)
				wantContains(t, out, "# resource governance", "mode "+rung.String())
				if mode := strings.Index(out, "mode "); mode < 0 || !strings.HasPrefix(out[mode+5:], rung.String()) {
					t.Errorf("workers=%s: first governed pass not at %s:\n%s", workers, rung, out)
				}
				var prof []byte
				if profile != "" {
					b, err := os.ReadFile(profile)
					if err != nil {
						t.Fatalf("workers=%s: partial profile not written: %v", workers, err)
					}
					prof = b
				}
				if wantOut == "" {
					wantOut, wantProfile = out, prof
					continue
				}
				if out != wantOut {
					t.Errorf("workers=%s: stdout differs from workers=1", workers)
				}
				if !bytes.Equal(prof, wantProfile) {
					t.Errorf("workers=%s: profile differs from workers=1", workers)
				}
			}
		})
	}
}

// TestSoakGovernKillRestartMidDegradation: a daemon session pushed over
// its budget is killed after it has stepped down, restarted with resume,
// and must finish on the same rung with final artifacts byte-identical to
// an uninterrupted governed run of the same session.
func TestSoakGovernKillRestartMidDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	testutil.LeakCheck(t)
	const workload = "adversarial"
	frames, sites, buf := netSoakFrames(t, workload, 256)
	_, budgets := calibrateBudgets(t, buf, sites)
	budget := budgets[govern.RungSketchStride]
	cfg := serve.Config{
		CheckpointEvery: 2, CheckpointInterval: 10 * time.Millisecond,
		SessionMemBudget: budget,
	}
	ccfg := serve.ClientConfig{
		SessionID: "soak-gov", Workload: workload, Sites: sites,
		MaxAttempts: 50, BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
	}

	// Reference: the same governed session, uninterrupted.
	refOut := filepath.Join(t.TempDir(), "out")
	refCfg := cfg
	refCfg.CheckpointDir, refCfg.OutputDir = filepath.Join(t.TempDir(), "ck"), refOut
	ref := startNetSoakServer(t, "127.0.0.1:0", refCfg)
	ccfg.Addr = ref.addr
	if _, err := serve.Push(context.Background(), ccfg, frames); err != nil {
		t.Fatalf("reference push: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ref.srv.Shutdown(ctx); err != nil {
		t.Fatalf("reference shutdown: %v", err)
	}
	<-ref.done
	refGov, err := os.ReadFile(filepath.Join(refOut, workload+".govern"))
	if err != nil {
		t.Fatalf("reference governance artifact: %v", err)
	}
	if !strings.Contains(string(refGov), "mode "+govern.RungSketchStride.String()) {
		t.Fatalf("reference session did not settle at sketch-stride:\n%s", refGov)
	}
	// The sketch rung's report must carry its error bounds.
	wantContains(t, string(refGov), "approx sketch-stride", "epsilon ", "delta ", "error-bound ")

	// Interrupted: kill once a checkpoint is durable, then verify the kill
	// really landed mid-degradation before restarting.
	ckDir := filepath.Join(t.TempDir(), "ck")
	outDir := filepath.Join(t.TempDir(), "out")
	kcfg := cfg
	kcfg.CheckpointDir, kcfg.OutputDir = ckDir, outDir
	s1 := startNetSoakServer(t, "127.0.0.1:0", kcfg)
	ccfg.Addr = s1.addr
	pushDone := make(chan error, 1)
	go func() {
		_, err := serve.Push(context.Background(), ccfg, frames)
		pushDone <- err
	}()
	// Kill only once a checkpoint recording a degraded rung is durable:
	// rungs are monotonic, so the restart then provably resumes
	// mid-degradation rather than re-tripping from scratch.
	ckPath := filepath.Join(ckDir, "soak-gov.ckpt")
	waitFor := time.Now().Add(30 * time.Second)
	for {
		if ck, err := checkpoint.Load(ckPath); err == nil &&
			ck.Ladder != nil && ck.Ladder.Rung != govern.RungFull {
			break
		}
		if time.Now().After(waitFor) {
			t.Fatal("no mid-degradation checkpoint appeared before the kill")
		}
		time.Sleep(time.Millisecond)
	}
	s1.srv.Kill()
	<-s1.done
	ck, err := checkpoint.Load(ckPath)
	if err != nil {
		t.Fatalf("checkpoint after kill: %v", err)
	}
	if ck.Ladder == nil || ck.Ladder.Rung == govern.RungFull {
		t.Fatalf("kill landed before any degradation (rung %v); the soak premise needs a mid-degradation kill", ck.Ladder)
	}
	t.Logf("killed at rung %s, frame cursor %d", ck.Ladder.Rung, ck.FramesApplied)

	rcfg := kcfg
	rcfg.Resume = true
	s2 := startNetSoakServer(t, s1.addr, rcfg)
	if err := <-pushDone; err != nil {
		t.Fatalf("push across kill/restart: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := s2.srv.Shutdown(ctx2); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-s2.done

	gotGov, err := os.ReadFile(filepath.Join(outDir, workload+".govern"))
	if err != nil {
		t.Fatalf("governance artifact after resume: %v", err)
	}
	if !bytes.Equal(gotGov, refGov) {
		t.Errorf("resumed governance report differs from uninterrupted run:\n--- resumed\n%s--- reference\n%s", gotGov, refGov)
	}
}
