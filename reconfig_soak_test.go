package ormprof

// Reconfiguration soak: live ring changes under fire. Clients stream
// sessions through the router tier while shards are added and removed,
// the active router is killed and a standby promoted, the orchestrator
// dies mid-migration, and operators replay topology commands against
// stale epochs. The contract is the cluster one unchanged: acknowledged
// means durable through any resize, every stream completes or fails
// typed, no session is lost or ingested twice, and the merged cluster
// report is byte-identical to a never-resized single-shard run — with
// per-session artifacts matching the offline reference at every worker
// count.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ormprof/internal/faultinject"
	"ormprof/internal/serve"
	"ormprof/internal/testutil"
	"ormprof/internal/trace"
)

// pushAllVia is pushAll against a router address list: attempts rotate
// through the routers, so a kill or a standby's redirect costs one
// attempt, not the stream.
func pushAllVia(t testing.TB, addrs []string, sessions []string, frames serve.SliceFrames, sites map[trace.SiteID]string) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(sessions))
	for _, s := range sessions {
		wg.Add(1)
		go func(session string) {
			defer wg.Done()
			_, err := serve.Push(context.Background(), serve.ClientConfig{
				Addrs: addrs, SessionID: session, Workload: "linkedlist", Sites: sites,
				MaxAttempts: 50, BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
				AttemptTimeout: 5 * time.Second,
			}, frames)
			if err != nil {
				errs <- fmt.Errorf("session %s: %w", session, err)
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSoakClusterResizeUnderFire runs the full reconfiguration sequence
// against live streams: grow the ring by a shard (migrating every
// session the new ring reassigns), kill the active router and promote
// the replicated standby, then shrink the ring by retiring shard 0
// through the promoted router. Every stream must complete and the
// merged report must be byte-identical to a cluster that was never
// resized.
func TestSoakClusterResizeUnderFire(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak")
	}
	testutil.LeakCheck(t)
	frames, sites, buf := netSoakFrames(t, "linkedlist", 64)
	want := singleShardReference(t, frames, sites)

	c, err := serve.NewCluster(serve.ClusterConfig{
		Dir:     t.TempDir(),
		Shards:  3,
		Routers: 2,
		Shard:   serve.Config{CheckpointEvery: 2, CheckpointInterval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		pushAllVia(t, c.RouterAddrs(), clusterSessions, frames, sites)
	}()

	waitForCheckpoint(t, c)
	if _, err := c.AddShard(); err != nil {
		t.Fatalf("add shard: %v", err)
	}
	if c.Epoch() != 2 {
		t.Errorf("epoch after add = %d, want 2", c.Epoch())
	}
	c.KillRouter()
	if err := c.PromoteRouter(); err != nil {
		t.Fatalf("promote router: %v", err)
	}
	if got := c.Epoch(); got != 2 {
		t.Errorf("promoted standby epoch = %d, want replicated epoch 2", got)
	}
	if err := c.RemoveShard(0); err != nil {
		t.Fatalf("remove shard 0: %v", err)
	}
	if c.Epoch() != 3 {
		t.Errorf("epoch after remove = %d, want 3", c.Epoch())
	}
	<-done

	got := mergedReport(t, c, len(clusterSessions))
	for name, b := range want {
		if !bytes.Equal(got[name], b) {
			t.Errorf("%s: resized cluster differs from never-resized run", name)
		}
	}

	// Per-session artifacts: any shard that finalized a session must have
	// produced output byte-identical to the offline reference, whatever
	// ring the session traveled through, at every worker count.
	var artifacts map[string][]byte
	for _, final := range c.FinalDirs() {
		outDir := filepath.Join(filepath.Dir(final), "out")
		if _, err := os.Stat(filepath.Join(outDir, "linkedlist.whomp")); err == nil {
			artifacts = readProfileArtifacts(t, outDir, "linkedlist")
			break
		}
	}
	if artifacts == nil {
		t.Fatal("no shard produced session artifacts")
	}
	for _, workers := range []int{1, 2, 8} {
		ref := offlineReference(t, "linkedlist", buf, sites, workers)
		for ext, b := range ref {
			if !bytes.Equal(artifacts[ext], b) {
				t.Errorf("workers=%d %s: resized cluster output differs from offline run", workers, ext)
			}
		}
	}
}

// TestSoakClusterKillDuringMigration arms a trap on the first "adopted"
// migration stage that crashes the destination shard — the worst window:
// the source has handed the session off, the destination just made it
// durable, and the orchestrator's next steps run against a corpse.
// Clients must fail over (the pinned destination is dark, so the retry
// walks the ring and restreams onto a live shard), later movers must
// fail typed without starving their sessions, and the merge must still
// be byte-identical with exactly one final per session.
func TestSoakClusterKillDuringMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak")
	}
	testutil.LeakCheck(t)
	frames, sites, _ := netSoakFrames(t, "linkedlist", 64)
	want := singleShardReference(t, frames, sites)

	// Shard slots are appended in order, so the next add lands at
	// len(shards); the trap closure reads dstSlot at fire time, inside the
	// same AddShard call that set it.
	var c *serve.Cluster
	dstSlot, fired := 0, false
	trap := faultinject.MigrationTrap("adopted", 1, func(session string) {
		fired = true
		t.Logf("trap: killing shard %d mid-migration of %s", dstSlot, session)
		c.KillShard(dstSlot)
	})
	c, err := serve.NewCluster(serve.ClusterConfig{
		Dir:         t.TempDir(),
		Shards:      3,
		Shard:       serve.Config{CheckpointEvery: 2, CheckpointInterval: 10 * time.Millisecond},
		MigrateHook: trap,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		pushAllVia(t, []string{c.Addr()}, clusterSessions, frames, sites)
	}()

	// Which sessions a new shard attracts depends on where its random
	// port hashes, so keep growing until some session actually migrates
	// into the trap. Zero movers across this many adds is vanishingly
	// unlikely.
	waitForCheckpoint(t, c)
	for i := 0; i < 12 && !fired; i++ {
		dstSlot = 3 + i
		if _, err := c.AddShard(); err != nil {
			// Movers after the kill fail typed ("destination shard is not
			// running"); their sessions stay pinned to the source.
			t.Logf("add shard %d: %v", dstSlot, err)
		}
	}
	if !fired {
		t.Fatal("no session migrated onto any added shard; trap never fired")
	}
	<-done

	got := mergedReport(t, c, len(clusterSessions))
	for name, b := range want {
		if !bytes.Equal(got[name], b) {
			t.Errorf("%s: kill-during-migration cluster differs from unfaulted run", name)
		}
	}
}

// TestSoakClusterAdminChaos exercises the admin plane's idempotency
// under fire: a duplicated add-shard command (the operator whose reply
// timed out and retried) must apply once and be refused once with the
// typed stale-epoch error, a standby router whose replication intake
// went mute must quietly fall behind, and its stale table must be
// refused — typed — when pushed at the active. The streams riding
// through the resize still finish byte-identical.
func TestSoakClusterAdminChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak")
	}
	testutil.LeakCheck(t)
	frames, sites, _ := netSoakFrames(t, "linkedlist", 64)
	want := singleShardReference(t, frames, sites)

	c, err := serve.NewCluster(serve.ClusterConfig{
		Dir:    t.TempDir(),
		Shards: 2,
		Shard:  serve.Config{CheckpointEvery: 2, CheckpointInterval: 10 * time.Millisecond},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A hand-built standby replicating from the cluster's active router,
	// its admin intake muted after one connection: it pulls the epoch-1
	// table at startup, then never hears another word.
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	muted := faultinject.MuteListener(aln, 1)
	sb, err := serve.NewRouter(sln, serve.RouterConfig{
		Shards: c.ShardAddrs(), Standby: true, ActiveAddr: c.Addr(),
		Peers:            []string{c.AdminAddr()},
		ProbeBackoffBase: 5 * time.Millisecond, ProbeBackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sbDone, sbAdminDone := make(chan error, 1), make(chan error, 1)
	go func() { sbDone <- sb.Serve() }()
	go func() { sbAdminDone <- sb.ServeAdmin(muted) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sb.Shutdown(ctx); err != nil {
			t.Errorf("standby shutdown: %v", err)
		}
		<-sbDone
		<-sbAdminDone
	}()
	if got := sb.Epoch(); got != 1 {
		t.Fatalf("standby startup pull: epoch = %d, want 1", got)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		pushAllVia(t, []string{c.Addr()}, clusterSessions, frames, sites)
	}()
	waitForCheckpoint(t, c)

	// The duplicated command: first applies (epoch 1 -> 2), the replay of
	// the same epoch-1 command is refused stale — it must NOT add a
	// second shard.
	epoch := c.Epoch()
	newEpoch, first, second := faultinject.DuplicateCommand(func() (uint64, error) {
		return serve.AdminShardCmd(c.AdminAddr(), true, epoch, "local", 5*time.Second)
	})
	if first != nil {
		t.Fatalf("first add-shard: %v", first)
	}
	if newEpoch != epoch+1 {
		t.Errorf("first add-shard: epoch = %d, want %d", newEpoch, epoch+1)
	}
	var stale *serve.StaleEpochError
	if !errors.As(second, &stale) {
		t.Fatalf("duplicated add-shard: err = %v, want *StaleEpochError", second)
	}
	if stale.Have != epoch+1 || stale.Got != epoch {
		t.Errorf("duplicated add-shard: refused with have=%d got=%d, want have=%d got=%d",
			stale.Have, stale.Got, epoch+1, epoch)
	}

	// The muted standby never saw the resize: it still serves epoch 1.
	// Reading its table spends the one connection its intake still
	// accepts; after that the mute swallows everything — including the
	// replication push that would have caught it up.
	st, err := serve.AdminFetchTable(muted.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("fetch standby table: %v", err)
	}
	if st.Epoch != epoch {
		t.Errorf("muted standby epoch = %d, want stale %d", st.Epoch, epoch)
	}
	if err := serve.AdminPushTable(muted.Addr().String(), st, 2*time.Second); err == nil {
		t.Error("muted standby accepted a connection past its budget")
	}
	// Promoting placements from the stale table is exactly what the
	// active must refuse: pushing it back is a typed stale-epoch error.
	stale = nil
	if err := serve.AdminPushTable(c.AdminAddr(), st, 2*time.Second); !errors.As(err, &stale) {
		t.Fatalf("stale table push: err = %v, want *StaleEpochError", err)
	}

	<-done
	got := mergedReport(t, c, len(clusterSessions))
	for name, b := range want {
		if !bytes.Equal(got[name], b) {
			t.Errorf("%s: admin-chaos cluster differs from unfaulted run", name)
		}
	}
}
