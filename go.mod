module ormprof

go 1.22
