package ormprof

// Record/replay contract test: "collect once, profile many" only works if a
// profile built from a replayed trace is byte-identical to one built from
// the live probe stream — for every profiler and every worker count. The
// trace format carries the workload name and site table precisely so this
// holds at the serialized-profile level, not just structurally.

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"ormprof/internal/depend"
	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/phase"
	"ormprof/internal/profiler"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

// recordWorkload runs a workload once, capturing both the in-memory buffer
// (live path) and the encoded trace bytes (replay path) from the same run.
func recordWorkload(t testing.TB, name string) (*trace.Buffer, map[trace.SiteID]string, []byte) {
	t.Helper()
	prog, err := workloads.New(name, workloads.Config{Scale: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	var enc bytes.Buffer
	tw := tracefmt.NewWriter(&enc, tracefmt.WithName(name))
	m := memsim.Run(prog, trace.Tee(buf, tw))
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf, m.StaticSites(), enc.Bytes()
}

func TestReplayProfilesByteIdentical(t *testing.T) {
	for _, name := range []string{"linkedlist", "181.mcf"} {
		t.Run(name, func(t *testing.T) {
			buf, sites, encoded := recordWorkload(t, name)

			for _, workers := range determinismWorkers {
				// Live path: profile the buffered probe stream.
				wpLive := whomp.NewParallel(sites, workers)
				buf.Replay(wpLive)
				var liveW bytes.Buffer
				if _, err := wpLive.Profile(name).WriteTo(&liveW); err != nil {
					t.Fatal(err)
				}

				// Replay path: pull the same events back out of the encoded
				// trace, using only the trace's own metadata.
				r, err := tracefmt.NewReader(bytes.NewReader(encoded))
				if err != nil {
					t.Fatal(err)
				}
				wpReplay, err := whomp.FromSource(r.Name(), r, r.Sites(), workers)
				if err != nil {
					t.Fatal(err)
				}
				var replayW bytes.Buffer
				if _, err := wpReplay.WriteTo(&replayW); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(liveW.Bytes(), replayW.Bytes()) {
					t.Errorf("workers=%d: replayed WHOMP profile differs from live (%d vs %d bytes)",
						workers, replayW.Len(), liveW.Len())
				}

				lpLive := leap.NewParallel(sites, 0, workers)
				buf.Replay(lpLive)
				var liveL bytes.Buffer
				if _, err := lpLive.Profile(name).WriteTo(&liveL); err != nil {
					t.Fatal(err)
				}
				r2, err := tracefmt.NewReader(bytes.NewReader(encoded))
				if err != nil {
					t.Fatal(err)
				}
				lpReplay, err := leap.FromSource(r2.Name(), r2, r2.Sites(), 0, workers)
				if err != nil {
					t.Fatal(err)
				}
				var replayL bytes.Buffer
				if _, err := lpReplay.WriteTo(&replayL); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(liveL.Bytes(), replayL.Bytes()) {
					t.Errorf("workers=%d: replayed LEAP profile differs from live (%d vs %d bytes)",
						workers, replayL.Len(), liveL.Len())
				}
			}
		})
	}
}

func TestStreamingConsumersMatchSlicePath(t *testing.T) {
	// Every analysis entry point has a streaming (Source) form; driven from
	// a replayed trace it must agree exactly with the slice path over the
	// live buffer.
	buf, sites, encoded := recordWorkload(t, "181.mcf")
	reader := func() *tracefmt.Reader {
		r, err := tracefmt.NewReader(bytes.NewReader(encoded))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	recsLive, _, err := profiler.TranslateSource(buf.Source(), sites)
	if err != nil {
		t.Fatal(err)
	}
	recsReplay, _, err := profiler.TranslateSource(reader(), sites)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsLive) != len(recsReplay) {
		t.Fatalf("translate: %d live records, %d replayed", len(recsLive), len(recsReplay))
	}
	for i := range recsLive {
		if recsLive[i] != recsReplay[i] {
			t.Fatalf("record %d: live %+v, replay %+v", i, recsLive[i], recsReplay[i])
		}
	}

	strLive, err := stride.IdealFromSource(buf.Source())
	if err != nil {
		t.Fatal(err)
	}
	strReplay, err := stride.IdealFromSource(reader())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(strLive.StronglyStrided(), strReplay.StronglyStrided()) {
		t.Error("stride ideal differs between live and replayed streams")
	}

	depLive, err := depend.IdealFromSource(buf.Source())
	if err != nil {
		t.Fatal(err)
	}
	depReplay, err := depend.IdealFromSource(reader())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(depLive.Result(), depReplay.Result()) {
		t.Error("dependence ideal differs between live and replayed streams")
	}

	conLive, err := depend.ConnorsFromSource(buf.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	conReplay, err := depend.ConnorsFromSource(reader(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(conLive.Result(), conReplay.Result()) {
		t.Error("Connors result differs between live and replayed streams")
	}

	cogLive, err := phase.CognizantFromSource(buf.Source(), sites, phase.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cogReplay, err := phase.CognizantFromSource(reader(), sites, phase.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	accLive, _ := phase.Quality(cogLive.Profiles("x"))
	accReplay, _ := phase.Quality(cogReplay.Profiles("x"))
	if accLive != accReplay || cogLive.Detector().NumPhases() != cogReplay.Detector().NumPhases() {
		t.Error("phase-cognizant profile differs between live and replayed streams")
	}
}

func TestReplayRoundTripLossless(t *testing.T) {
	// The encoded trace must decode to exactly the probe stream the live
	// run produced: same events, same order, same payloads.
	buf, _, encoded := recordWorkload(t, "197.parser")
	r, err := tracefmt.NewReader(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i >= buf.Len() {
			t.Fatalf("trace decoded more than the %d live events", buf.Len())
		}
		if e != buf.Events[i] {
			t.Fatalf("event %d: replayed %+v, live %+v", i, e, buf.Events[i])
		}
		i++
	}
	if i != buf.Len() {
		t.Fatalf("trace decoded %d events, live run produced %d", i, buf.Len())
	}
}
