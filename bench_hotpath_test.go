package ormprof

// Hot-path benchmarks and the zero-allocation gate for the event loop.
//
// The event loop is the per-event cost every profile pays: the CDC receives
// a probe event, updates the OMC on alloc/free, and Floor-translates every
// access against the live-object map. These benchmarks pin that loop's
// steady-state cost in ns/event, B/op, and allocs/op, plus the end-to-end
// ingest rate (encoded trace bytes → translated, compressed profile) in
// MB/s. docs/PERFORMANCE.md records the methodology and the before/after
// numbers; `make bench-allocs` runs TestEventLoopSteadyStateAllocs as the CI
// gate that steady-state allocations stay at zero.

import (
	"bytes"
	"testing"

	"ormprof/internal/experiments"
	"ormprof/internal/leap"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/workloads"
)

// churnAccesses is how many access events follow each alloc/free pair in
// one synthetic churn cycle — a heap-heavy 25 % object-event mix, far more
// allocation-intensive than any of the seven workloads, so the allocation
// gate is conservative.
const churnAccesses = 6

// churnTrace builds a steady-state workload for the event loop: nLive
// warm-up allocations, then cycles of (free one object, re-allocate its
// address, access churnAccesses live objects). Replaying the churn slice
// any number of times against the same OMC is self-consistent — every cycle
// frees an address that is live and re-allocates it — so a benchmark can
// loop it without the live set growing or shrinking.
func churnTrace(nLive, cycles int) (warm, churn []trace.Event) {
	const base = trace.Addr(0x10000)
	const objSize = 64
	addrOf := func(i int) trace.Addr { return base + trace.Addr(i*objSize) }
	tm := trace.Time(0)
	next := func() trace.Time { tm++; return tm }

	for i := 0; i < nLive; i++ {
		warm = append(warm, trace.Event{
			Kind: trace.EvAlloc, Time: next(), Site: trace.SiteID(i%16 + 1),
			Addr: addrOf(i), Size: objSize,
		})
	}
	rng := uint64(0x9e3779b97f4a7c15)
	for c := 0; c < cycles; c++ {
		victim := c % nLive
		churn = append(churn,
			trace.Event{Kind: trace.EvFree, Time: next(), Addr: addrOf(victim)},
			trace.Event{Kind: trace.EvAlloc, Time: next(), Site: trace.SiteID(victim%16 + 1),
				Addr: addrOf(victim), Size: objSize},
		)
		for a := 0; a < churnAccesses; a++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			obj := int(rng>>33) % nLive
			churn = append(churn, trace.Event{
				Kind: trace.EvAccess, Time: next(), Instr: trace.InstrID(a + 1),
				Addr: addrOf(obj) + trace.Addr(rng%objSize), Size: 8,
			})
		}
	}
	return warm, churn
}

// warmCDC builds a CDC over a discard SCC with the warm-up live set applied.
func warmCDC(warm []trace.Event) *profiler.CDC {
	cdc := profiler.NewCDC(omc.New(nil), profiler.SCCFunc(func(profiler.Record) {}))
	for _, e := range warm {
		cdc.Emit(e)
	}
	return cdc
}

// BenchmarkEventLoopSteadyState measures the per-event cost of the
// translate loop once the object map is warm: each op is one probe event
// (a 25 % alloc/free churn mix) through CDC → OMC → discard SCC. The
// headline metrics are ns/op (= ns/event) and allocs/op, which must be 0
// in steady state.
func BenchmarkEventLoopSteadyState(b *testing.B) {
	warm, churn := churnTrace(4096, 4096)
	cdc := warmCDC(warm)
	b.ReportAllocs()
	b.SetBytes(12) // one raw (instr, addr) record, as in trace.RawBytes
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		cdc.Emit(churn[i])
		if i++; i == len(churn) {
			i = 0
		}
	}
}

// BenchmarkEventLoopAccessOnly isolates the pure translation cost — every
// op is one access event Floor-translated against a warm 4096-object live
// set, with no object churn at all.
func BenchmarkEventLoopAccessOnly(b *testing.B) {
	warm, churn := churnTrace(4096, 4096)
	accesses := make([]trace.Event, 0, len(churn))
	for _, e := range churn {
		if e.Kind == trace.EvAccess {
			accesses = append(accesses, e)
		}
	}
	cdc := warmCDC(warm)
	b.ReportAllocs()
	b.SetBytes(12)
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		cdc.Emit(accesses[i])
		if i++; i == len(accesses) {
			i = 0
		}
	}
}

// BenchmarkIngestEndToEnd measures the full ingest path on a recorded
// 181.mcf trace: decode the encoded ORMTRACE stream, translate every event
// through a fresh OMC, and (in the leap variant) compress the translated
// stream. MB/s is over the encoded trace bytes — the rate a daemon drains a
// connection or a tool drains a file.
func BenchmarkIngestEndToEnd(b *testing.B) {
	prog, err := workloads.New("181.mcf", benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	buf, sites := experiments.Record(prog, nil)
	var enc bytes.Buffer
	tw := tracefmt.NewWriter(&enc, tracefmt.WithName("bench"))
	tw.SetSites(sites)
	buf.Replay(tw)
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	encoded := enc.Bytes()

	b.Run("translate", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(encoded)))
		for i := 0; i < b.N; i++ {
			cdc := profiler.NewCDC(omc.New(sites), profiler.SCCFunc(func(profiler.Record) {}))
			r, err := tracefmt.NewReader(bytes.NewReader(encoded))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := trace.Drain(r, cdc); err != nil {
				b.Fatal(err)
			}
			cdc.Finish()
			if cdc.Records() == 0 {
				b.Fatal("no records translated")
			}
		}
	})
	b.Run("leap", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(encoded)))
		for i := 0; i < b.N; i++ {
			lp := leap.New(sites, 0)
			r, err := tracefmt.NewReader(bytes.NewReader(encoded))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := trace.Drain(r, lp); err != nil {
				b.Fatal(err)
			}
			if lp.Profile("bench").Records == 0 {
				b.Fatal("empty profile")
			}
		}
	})
}

// BenchmarkWorkloadIngest measures the translate path over every
// workload's encoded trace: decode + OMC translation, reported as MB/s of
// encoded trace plus ns/event. These are the per-workload rows of the
// before/after table in docs/PERFORMANCE.md.
func BenchmarkWorkloadIngest(b *testing.B) {
	for _, name := range workloads.Names() {
		name := name
		b.Run(shortName(name), func(b *testing.B) {
			prog, err := workloads.New(name, benchCfg())
			if err != nil {
				b.Fatal(err)
			}
			buf, sites := experiments.Record(prog, nil)
			var enc bytes.Buffer
			tw := tracefmt.NewWriter(&enc, tracefmt.WithName(name))
			tw.SetSites(sites)
			buf.Replay(tw)
			if err := tw.Close(); err != nil {
				b.Fatal(err)
			}
			encoded := enc.Bytes()
			events := buf.Len()

			b.ReportAllocs()
			b.SetBytes(int64(len(encoded)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cdc := profiler.NewCDC(omc.New(sites), profiler.SCCFunc(func(profiler.Record) {}))
				r, err := tracefmt.NewReader(bytes.NewReader(encoded))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := trace.Drain(r, cdc); err != nil {
					b.Fatal(err)
				}
				cdc.Finish()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(events)), "ns/event")
		})
	}
}

// TestEventLoopSteadyStateAllocs is the CI allocation gate (`make
// bench-allocs`): one op is a full churn cycle — free + alloc +
// churnAccesses accesses — against a warm object map, and the benchmark
// framework's allocs/op for that cycle must be exactly zero. Amortized
// costs (arena growth once per thousands of objects) divide away; anything
// per-event or per-object fails the gate.
func TestEventLoopSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks the event loop")
	}
	warm, churn := churnTrace(4096, 4096)
	cycleLen := 2 + churnAccesses
	res := testing.Benchmark(func(b *testing.B) {
		cdc := warmCDC(warm)
		b.ResetTimer()
		i := 0
		for n := 0; n < b.N; n++ {
			for c := 0; c < cycleLen; c++ {
				cdc.Emit(churn[i])
				if i++; i == len(churn) {
					i = 0
				}
			}
		}
	})
	if allocs := res.AllocsPerOp(); allocs > 0 {
		t.Fatalf("event loop steady state: %d allocs per churn cycle (free+alloc+%d accesses), want 0\n%s %s",
			allocs, churnAccesses, res.String(), res.MemString())
	}
}
