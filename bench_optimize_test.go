package ormprof

import (
	"testing"

	"ormprof/internal/cliutil"
	"ormprof/internal/workloads"
)

// BenchmarkOptimizePipeline runs the closed PGO loop end to end — live
// profiling pass with streaming plan derivation, LEAP prefetch pass, plan
// assembly, and the before/after hierarchy evaluation including the live
// re-run under the plan-driven allocator — on the clustering showcase.
// The reported metric is the L1 miss reduction the loop measures.
func BenchmarkOptimizePipeline(b *testing.B) {
	cfg := workloads.Config{Scale: *benchScale, Seed: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tf := &cliutil.TraceFlags{}
		ev, err := tf.Load("hotcold", cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := ev.Optimize(cliutil.OptimizeConfig{Workers: 1, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Levels) == 0 || res.Levels[0].After.Misses >= res.Levels[0].Before.Misses {
			b.Fatalf("optimize pipeline lost its win: %+v", res.Levels)
		}
		if i == b.N-1 {
			l1 := res.Levels[0]
			b.ReportMetric(100*(1-float64(l1.After.Misses)/float64(l1.Before.Misses)), "L1-miss-reduction-%")
		}
	}
}
