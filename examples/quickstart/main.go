// Quickstart: instrument the paper's linked-list program (Figures 1 and 3),
// translate its raw access trace into object-relative form, and collect
// WHOMP and LEAP profiles from it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

func main() {
	// 1. Run the instrumented program. The machine emits an instruction
	//    probe for every load/store and an object probe for every
	//    allocation, exactly like the paper's assembly-level probes.
	prog := workloads.NewLinkedList(workloads.Config{Scale: 1, Seed: 1})
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)
	sites := m.StaticSites()

	st := trace.Collect(buf.Events)
	fmt.Printf("trace: %d accesses (%d loads, %d stores), %d objects from %d sites\n\n",
		st.Accesses, st.Loads, st.Stores, st.Allocs, st.Sites)

	// 2. Object-relative translation: raw (instr, address) pairs become
	//    (instr, group, object, offset, time) tuples. Note how the
	//    scattered heap addresses of the list nodes turn into ascending
	//    serials at fixed offsets — the paper's Figure 3.
	recs, _ := profiler.TranslateTrace(buf.Events, sites)
	fmt.Println("first traversal, raw vs object-relative:")
	fmt.Println("  instr  raw address      (group, object, offset)")
	shown := 0
	for i, e := range buf.Accesses() {
		if shown == 12 {
			break
		}
		fmt.Printf("  i%-4d  %#012x   %v\n", e.Instr, uint64(e.Addr), recs[i].Ref)
		shown++
	}

	// 3. WHOMP: the lossless whole-stream profiler. One Sequitur grammar
	//    per decomposed dimension.
	wp := whomp.New(sites)
	buf.Replay(wp)
	wprof := wp.Profile("linkedlist")
	rasg := whomp.NewRASG()
	buf.Replay(rasg)
	fmt.Printf("\nWHOMP (lossless): OMSG %d bytes vs raw-address grammar %d bytes (%.1f%% smaller)\n",
		wprof.EncodedBytes(), rasg.EncodedBytes(), whomp.CompressionGain(wprof, rasg))

	instrs, addrs, err := wprof.ReconstructAccesses()
	if err != nil {
		panic(err)
	}
	fmt.Printf("  losslessness check: regenerated %d accesses, first = (i%d, %#x)\n",
		len(instrs), instrs[0], uint64(addrs[0]))

	// 4. LEAP: the lossy LMAD profiler.
	lp := leap.New(sites, 0)
	buf.Replay(lp)
	lprof := lp.Profile("linkedlist")
	accPct, instrPct := lprof.SampleQuality()
	fmt.Printf("\nLEAP (lossy): %d bytes (%.0fx compression), %.1f%% accesses / %.1f%% instructions captured\n",
		lprof.EncodedSize(), lprof.CompressionRatio(), accPct, instrPct)
	for _, k := range lprof.Keys() {
		s := lprof.Streams[k]
		if len(s.LMADs) > 0 && k.Group != 0 {
			fmt.Printf("  i%-4d group %d: first LMAD %v\n", k.Instr, k.Group, &s.LMADs[0])
		}
	}
}
