// Loadspec: use LEAP dependence frequencies to pick speculative
// load-reordering candidates — the §4 motivation for the memory dependence
// frequency profile. A load may be hoisted above a store when its MDF
// against that store is low (misspeculation is rare); it must not be when
// the MDF is high.
//
// Run with:
//
//	go run ./examples/loadspec
package main

import (
	"fmt"

	"ormprof/internal/depend"
	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

// hoistThreshold is the misspeculation budget: pairs below it are safe to
// reorder speculatively (Chen et al.'s regime of profitable speculation).
const hoistThreshold = 0.05

func main() {
	prog, err := workloads.New("186.crafty", workloads.Config{Scale: 1, Seed: 5})
	if err != nil {
		panic(err)
	}
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)

	lp := leap.New(m.StaticSites(), 0)
	buf.Replay(lp)
	profile := lp.Profile("186.crafty")
	res := depend.FromLEAP(profile)
	mdf := res.MDF()

	cm := depend.SortedMDF(mdf)
	fmt.Printf("LEAP found %d dependent (store, load) pairs\n\n", len(cm.Pairs))
	fmt.Println("  store    load     MDF      decision")
	hoistable, blocked := 0, 0
	for i, p := range cm.Pairs {
		decision := "KEEP ORDER (dependence too frequent)"
		if cm.Vals[i] < hoistThreshold {
			decision = "hoist speculatively (misspeculation rare)"
			hoistable++
		} else {
			blocked++
		}
		if i < 14 {
			fmt.Printf("  st%-5d  ld%-5d  %5.1f%%   %s\n", p.St, p.Ld, 100*cm.Vals[i], decision)
		}
	}
	if len(cm.Pairs) > 14 {
		fmt.Printf("  … %d more pairs\n", len(cm.Pairs)-14)
	}
	fmt.Printf("\nsummary: %d pairs hoistable below the %.0f%% misspeculation budget, %d blocked\n",
		hoistable, 100*hoistThreshold, blocked)

	// The other §4 dependence client: loop-invariant load removal. A load
	// that re-reads a constant location with no interfering store inside
	// its execution span can be kept in a register.
	inv := depend.LoopInvariant(profile, 0)
	fmt.Printf("\nloop-invariant load candidates: %d\n", len(inv))
	for i, c := range inv {
		if i == 6 {
			fmt.Printf("  … %d more\n", len(inv)-6)
			break
		}
		fmt.Printf("  ld%-5d %6d execs, %.0f%% constant-location, ~%d redundant reads removable\n",
			c.Instr, c.Execs, 100*c.ConstFrac, c.Redundant)
	}
}
