// Hotstream: extract hot data streams — frequently repeated access
// subsequences — from the object dimension of a WHOMP profile, in the style
// of Chilimbi-Hirzel hot data stream prefetching, which §3.2 names as a
// consumer of the OMSG. A hot object sequence means: when the first objects
// of the sequence are touched, the rest will follow — prefetch them.
//
// Run with:
//
//	go run ./examples/hotstream
package main

import (
	"fmt"

	"ormprof/internal/decomp"
	"ormprof/internal/hotstream"
	"ormprof/internal/memsim"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

func main() {
	// The linked-list workload: every traversal touches the same object
	// sequence, which is invisible in raw addresses but a textbook hot
	// data stream in the object dimension.
	prog := workloads.NewLinkedList(workloads.Config{Scale: 1, Seed: 7})
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)

	wp := whomp.New(m.StaticSites())
	buf.Replay(wp)
	profile := wp.Profile("linkedlist")

	objGrammar := profile.Grammars[decomp.DimObject]
	fmt.Printf("object grammar: %d rules, %d symbols for %d accesses\n\n",
		objGrammar.NumRules(), objGrammar.Symbols(), profile.Records)

	streams := hotstream.Extract(objGrammar, hotstream.Options{
		MinLength:  4,
		MinFreq:    4,
		MaxStreams: 5,
	})
	fmt.Printf("hot object streams (top %d):\n", len(streams))
	for i, s := range streams {
		preview := s.Symbols
		ellipsis := ""
		if len(preview) > 12 {
			preview = preview[:12]
			ellipsis = " …"
		}
		fmt.Printf("  #%d  freq %4d × len %4d  (heat %6d)  objects %v%s\n",
			i+1, s.Freq, len(s.Symbols), s.Heat, preview, ellipsis)
	}
	fmt.Printf("\ncoverage: these streams account for up to %.0f%% of all accesses.\n",
		100*hotstream.Coverage(objGrammar, streams))
	fmt.Println("a prefetcher that recognizes the stream head can fetch the remaining")
	fmt.Println("objects' cache lines ahead of the traversal (Chilimbi & Hirzel, PLDI'02).")
}
