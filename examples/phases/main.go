// Phases: detect program phases from interval signatures, predict the next
// phase, and collect one LEAP profile per phase — the paper's §6 future
// work ("make use of recent results on phase detection and prediction to
// profile references in a phase cognizant manner"), demonstrated on the
// phase-rich bzip2 workload.
//
// Run with:
//
//	go run ./examples/phases
package main

import (
	"fmt"

	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/phase"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

func main() {
	prog, err := workloads.New("256.bzip2", workloads.Config{Scale: 1, Seed: 7})
	if err != nil {
		panic(err)
	}
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)
	sites := m.StaticSites()

	// Monolithic LEAP for comparison.
	mono := leap.New(sites, 0)
	buf.Replay(mono)
	monoAcc, _ := mono.Profile("bzip2").SampleQuality()

	// Phase-cognizant collection.
	cog := phase.NewCognizantLEAP(phase.Config{IntervalLen: 4096}, 0)
	cdc := profiler.NewCDC(omc.New(sites), cog)
	buf.Replay(cdc)
	cdc.Finish()
	det := cog.Detector()
	profiles := cog.Profiles("bzip2")
	cogAcc, _ := phase.Quality(profiles)

	fmt.Printf("phase detection on 256.bzip2: %s\n\n", det)

	// Render the phase timeline, one letter per interval.
	fmt.Print("timeline: ")
	for _, p := range det.Intervals() {
		fmt.Printf("%c", 'A'+rune(p%26))
	}
	fmt.Println()

	// How predictable is the sequence?
	acc := phase.EvaluatePrediction(det.Intervals())
	fmt.Printf("next-phase prediction accuracy: %.0f%% (chance: %.0f%%)\n\n",
		100*acc, 100/float64(det.NumPhases()))

	// Per-phase profiles are more homogeneous.
	fmt.Println("per-phase LEAP profiles:")
	for p := 0; p < det.NumPhases(); p++ {
		prof, ok := profiles[p]
		if !ok {
			continue
		}
		pAcc, _ := prof.SampleQuality()
		fmt.Printf("  phase %c: %7d accesses, %5.1f%% captured\n", 'A'+rune(p%26), prof.Records, pAcc)
	}
	fmt.Printf("\naggregate capture: monolithic %.1f%%, phase-cognizant %.1f%%\n", monoAcc, cogAcc)
}
