// Prefetch: use LEAP's stride output to emit stride-based prefetch
// candidates — the §4 second target optimization (Wu's PLDI'02 prefetching
// needs exactly the strongly strided instructions LEAP identifies).
//
// Run with:
//
//	go run ./examples/prefetch
package main

import (
	"fmt"

	"ormprof/internal/cachesim"
	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/prefetch"
	"ormprof/internal/profiler"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

const (
	cacheLine = 64
	// lookahead is how many iterations ahead to prefetch: enough to cover
	// a miss latency of ~200 cycles at a few cycles per iteration.
	lookahead = 32
)

func main() {
	prog, err := workloads.New("175.vpr", workloads.Config{Scale: 1, Seed: 5})
	if err != nil {
		panic(err)
	}
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)

	lp := leap.New(m.StaticSites(), 0)
	buf.Replay(lp)
	profile := lp.Profile("175.vpr")
	strong := stride.FromLEAP(profile)

	fmt.Printf("LEAP identified %d strongly strided instructions in 175.vpr\n\n", len(strong))
	fmt.Println("  instr    stride   dominance   prefetch plan")
	for _, id := range stride.SortedIDs(strong) {
		info := strong[id]
		plan := "skip (stride fits in-line; hardware prefetcher covers it)"
		distance := info.Stride * lookahead
		if info.Stride != 0 && abs(info.Stride) >= cacheLine/8 {
			plan = fmt.Sprintf("insert prefetch addr+%d every %d iterations", distance, lineEvery(info.Stride))
		}
		fmt.Printf("  i%-6d  %+6d   %5.1f%%      %s\n", id, info.Stride, 100*info.Frac, plan)
	}
	fmt.Println("\n(instructions with a dominant stride < one cache line per iteration")
	fmt.Println(" are left to the hardware; larger strides get software prefetches)")

	// Quantify the plan on a simulated L1: replay the object-relative
	// stream with and without the profile-directed prefetches.
	recs, o := profiler.TranslateTrace(buf.Events, m.StaticSites())
	_, res := prefetch.EvaluateProfile(recs, o, profile, cachesim.L1D)
	fmt.Printf("\nmeasured on a simulated L1 (32KiB/64B/8-way):\n")
	fmt.Printf("  without prefetching: %6d demand misses\n", res.Baseline.Misses)
	fmt.Printf("  with prefetching:    %6d demand misses  — %.1f%% fewer (%d prefetches issued)\n",
		res.Prefetched.Misses, res.MissReduction(), res.Issued)
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// lineEvery reports after how many iterations a stride crosses into a new
// cache line (prefetching more often is wasted bandwidth).
func lineEvery(stride int64) int64 {
	s := abs(stride)
	if s >= cacheLine {
		return 1
	}
	return cacheLine / s
}
