// Fieldreorder: consume the offset dimension of a WHOMP profile to find
// fields that are accessed together but laid out apart, and suggest a
// reordering — the §3.2 use case ("a frequently repeated offset sequence,
// say (0, 36)*, … may reveal a field-reordering opportunity to the compiler
// to take advantage of spatial locality").
//
// The instrumented program processes a pool of 128-byte session records
// whose hot pair — id (offset 0) and hitCount (offset 96) — is separated by
// an 88-byte cold payload, so every record visit touches two cache lines
// when one would do.
//
// Run with:
//
//	go run ./examples/fieldreorder
package main

import (
	"fmt"
	"sort"

	"ormprof/internal/cachesim"
	"ormprof/internal/decomp"
	"ormprof/internal/layout"
	"ormprof/internal/memsim"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
)

// Session record layout (128 bytes):
//
//	0   id        (8)   hot
//	8   payload   (88)  cold (checksummed rarely)
//	96  hitCount  (8)   hot
//	104 lastSeen  (8)   warm
//	112 pad       (16)
const (
	recSize     = 128
	offID       = 0
	offPayload  = 8
	offHitCount = 96
	offLastSeen = 104
)

const (
	ldID trace.InstrID = iota + 1
	ldHit
	stHit
	stSeen
	ldPayload
)

const sitePool trace.SiteID = 1

const cacheLine = 64

type sessionScan struct{}

func (sessionScan) Name() string { return "sessionscan" }

func (sessionScan) Run(m *memsim.Machine) {
	// 512 records × 128 B = 64 KiB: twice the L1, so the hot loop thrashes
	// under the original layout but fits once the hot fields are packed.
	const nRecs = 512
	pool := m.Alloc(sitePool, nRecs*recSize)
	rec := func(i int) trace.Addr { return pool + trace.Addr(i*recSize) }

	// Hot loop: every lookup touches id then hitCount — offsets 0 and 96,
	// two cache lines apart.
	for round := 0; round < 40; round++ {
		for i := 0; i < nRecs; i++ {
			m.Load(ldID, rec(i)+offID, 8)
			m.Load(ldHit, rec(i)+offHitCount, 8)
			m.Store(stHit, rec(i)+offHitCount, 8)
			if round%8 == 0 {
				m.Store(stSeen, rec(i)+offLastSeen, 8)
			}
		}
	}
	// Cold path: payload checksum, once.
	for i := 0; i < nRecs; i++ {
		for b := 0; b < 88; b += 8 {
			m.Load(ldPayload, rec(i)+offPayload+trace.Addr(b), 8)
		}
	}
	m.Free(pool)
}

func main() {
	buf := &trace.Buffer{}
	memsim.Run(sessionScan{}, buf)

	wp := whomp.New(nil)
	buf.Replay(wp)
	profile := wp.Profile("sessionscan")

	// Count same-object offset digrams from the recomposed tuple stream;
	// normalize offsets to their position within the 128-byte record so
	// all records aggregate.
	recs, _ := profiler.TranslateTrace(buf.Events, nil)
	type pair struct{ a, b uint64 }
	counts := make(map[pair]uint64)
	for i := 1; i < len(recs); i++ {
		p, q := recs[i-1], recs[i]
		if p.Ref.Group != q.Ref.Group || p.Ref.Object != q.Ref.Object || p.Ref.Group == 0 {
			continue
		}
		a, b := p.Ref.Offset%recSize, q.Ref.Offset%recSize
		if a == b {
			continue
		}
		counts[pair{a, b}]++
	}
	type hot struct {
		p pair
		n uint64
	}
	var hots []hot
	for p, n := range counts {
		hots = append(hots, hot{p, n})
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].n > hots[j].n })

	fmt.Printf("offset grammar: %d symbols for %d accesses (the hot (0, 96)* pattern\n",
		profile.Grammars[decomp.DimOffset].Symbols(), profile.Records)
	fmt.Println("compresses to a handful of rules — §3.2's frequently repeated sequence)")
	fmt.Println("\nhottest same-record offset digrams:")
	fmt.Println("  (off_a, off_b)    count   gap    verdict")
	for i, h := range hots {
		if i == 6 {
			break
		}
		gap := int64(h.p.b) - int64(h.p.a)
		if gap < 0 {
			gap = -gap
		}
		verdict := "fine: same cache line"
		if gap >= cacheLine {
			verdict = fmt.Sprintf("REORDER: fields span %d lines; pack them together", 1+gap/cacheLine)
		}
		fmt.Printf("  (%3d, %3d)     %7d   %4d   %s\n", h.p.a, h.p.b, h.n, gap, verdict)
	}
	fmt.Println("\nsuggested layout: move hitCount (96) and lastSeen (104) next to id (0);")
	fmt.Println("the hot loop then touches one cache line per record instead of two.")

	// Quantify the suggestion: replay the object-relative stream through a
	// 32 KiB L1 under the original and the reordered layouts.
	wpOMC := wp.OMC()
	info := layout.OMCInfo{OMC: wpOMC}
	orig := layout.OriginalResolver(info)
	group := recs[len(recs)/2].Ref.Group
	plan, err := layout.PlanFields(recs, group, recSize)
	if err != nil {
		panic(err)
	}
	before, _ := layout.Evaluate(recs, orig, cachesim.L1D)
	after, _ := layout.Evaluate(recs, layout.FieldResolver(orig, plan), cachesim.L1D)
	fmt.Printf("\nmeasured on a simulated L1 (32KiB/64B/8-way):\n")
	fmt.Printf("  original layout:  %6d misses (%.2f%%)\n", before.Misses, 100*before.MissRate())
	fmt.Printf("  reordered layout: %6d misses (%.2f%%)  — %.1f%% fewer misses\n",
		after.Misses, 100*after.MissRate(), layout.Improvement(before, after))
}
