// Stability: the paper's §1 motivation demonstrated end to end. The same
// program is run under four allocator policies (free-list, bump, and two
// differently seeded randomized layouts). The raw address stream changes
// with every policy — the "confounding artifacts" — while the
// object-relative stream is bit-identical across all of them.
//
// Run with:
//
//	go run ./examples/stability
package main

import (
	"fmt"
	"os"

	"ormprof/internal/experiments"
	"ormprof/internal/report"
	"ormprof/internal/workloads"
)

func main() {
	const workload = "197.parser"
	rows, err := experiments.AllocatorInvariance(workload, workloads.Config{Scale: 1, Seed: 5})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stability:", err)
		os.Exit(1)
	}

	fmt.Printf("workload %s under four allocator policies (reference: %s):\n\n", workload, rows[0].Policy)
	tbl := report.NewTable("Policy", "RASG syms", "OMSG syms", "raw stream", "object-relative stream")
	for i, r := range rows {
		rawNote := "== reference"
		if !r.RawIdentical {
			rawNote = "DIFFERS"
		}
		objNote := "identical"
		if !r.ObjectRelativeIdentical {
			objNote = "DIFFERS (bug!)"
		}
		if i == 0 {
			rawNote, objNote = "(reference)", "(reference)"
		}
		tbl.AddRowf(r.Policy, r.RASGSymbols, r.OMSGSymbols, rawNote, objNote)
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout

	fmt.Println("\nraw profiles change with the allocator (and would change run to run),")
	fmt.Println("so raw-address profiles cannot be compared or merged across runs.")
	fmt.Println("object-relative profiles are allocator-invariant: the same tuples,")
	fmt.Println("bit for bit, under every layout — the invariant half of the profile")
	fmt.Println("that §2.3 separates from the run-dependent object table.")
}
