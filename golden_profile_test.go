package ormprof

// Seed-profile golden gate: the serialized WHOMP and LEAP profiles of all
// seven workloads are pinned by SHA-256 against testdata/seed_profiles.json,
// at every supported worker count. The hashes were generated before the
// hot-path rework (flat SoA B+Tree object map, pooled event loop), so any
// change to translation, decomposition, or compression that alters even one
// output byte fails here — performance work must not move the profiles.
//
// Regenerate (only when an intentional format change lands):
//
//	go test -run TestSeedProfileGolden -update-golden .
import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ormprof/internal/experiments"
	"ormprof/internal/leap"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/seed_profiles.json from the current code")

const seedGoldenPath = "testdata/seed_profiles.json"

// seedGolden is one workload's pinned profile hashes.
type seedGolden struct {
	Whomp string `json:"whomp"`
	Leap  string `json:"leap"`
}

func sha(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// profileHashes profiles one recorded workload with the given worker count
// and returns the SHA-256 of the serialized WHOMP and LEAP profiles.
func profileHashes(t *testing.T, name string, buf *trace.Buffer, sites map[trace.SiteID]string, workers int) seedGolden {
	t.Helper()
	wp := whomp.NewParallel(sites, workers)
	buf.Replay(wp)
	var wb bytes.Buffer
	if _, err := wp.Profile(name).WriteTo(&wb); err != nil {
		t.Fatalf("%s workers=%d: whomp WriteTo: %v", name, workers, err)
	}
	lp := leap.NewParallel(sites, 0, workers)
	buf.Replay(lp)
	var lb bytes.Buffer
	if _, err := lp.Profile(name).WriteTo(&lb); err != nil {
		t.Fatalf("%s workers=%d: leap WriteTo: %v", name, workers, err)
	}
	return seedGolden{Whomp: sha(wb.Bytes()), Leap: sha(lb.Bytes())}
}

func TestSeedProfileGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles all seven workloads at three worker counts")
	}
	got := make(map[string]seedGolden)
	for _, name := range workloads.Names() {
		prog, err := workloads.New(name, workloads.Config{Scale: 1, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		buf, sites := experiments.Record(prog, nil)
		ref := profileHashes(t, name, buf, sites, 1)
		for _, workers := range []int{2, 8} {
			if h := profileHashes(t, name, buf, sites, workers); h != ref {
				t.Errorf("%s: workers=%d profile hashes differ from workers=1", name, workers)
			}
		}
		got[name] = ref
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(seedGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seedGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", seedGoldenPath)
		return
	}

	data, err := os.ReadFile(seedGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	want := make(map[string]seedGolden)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, ref := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from %s", name, seedGoldenPath)
			continue
		}
		if ref != w {
			t.Errorf("%s: profile hashes changed from seed:\n got  %+v\n want %+v", name, ref, w)
		}
	}
}

// TestSeedProfileGoldenAfterResume proves the translation layer survives a
// mid-stream checkpoint cycle without changing a single record: the OMC is
// snapshotted halfway through each workload's trace, restored into a fresh
// OMC, and the second half translated against the restored state must equal
// the records of an uninterrupted run. (The service layer's per-cut resume
// tests cover the full pipeline; this pins the object map specifically.)
func TestSeedProfileGoldenAfterResume(t *testing.T) {
	for _, name := range workloads.Names() {
		prog, err := workloads.New(name, workloads.Config{Scale: 1, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		buf, sites := experiments.Record(prog, nil)
		events := buf.Events

		full, _ := profiler.TranslateTrace(events, sites)

		cut := len(events) / 2
		half := &profiler.Collector{}
		cdc := profiler.NewCDC(omc.New(sites), half)
		for _, e := range events[:cut] {
			cdc.Emit(e)
		}
		snap, err := cdc.OMC.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", name, err)
		}
		restored, err := omc.FromSnapshot(snap)
		if err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		cdc2 := profiler.NewCDC(restored, half)
		for _, e := range events[cut:] {
			cdc2.Emit(e)
		}
		cdc2.Finish()

		if len(half.Records) != len(full) {
			t.Fatalf("%s: resumed run translated %d records, want %d", name, len(half.Records), len(full))
		}
		for i := range full {
			if half.Records[i] != full[i] {
				t.Fatalf("%s: record %d differs after resume:\n got  %v\n want %v", name, i, half.Records[i], full[i])
			}
		}
	}
}
