# Developer / CI entry points. Tier-1 is what every PR must keep green;
# test-race (plus vet and fuzz-short) is the tier-2 check for the concurrent
# pipeline stages and the binary decoders; test-soak drives every workload
# through every fault class (corruption, truncation, field flips, panics,
# stalls) and must never hang, leak, or let a panic escape.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test test-race test-short test-soak test-soak-race bench bench-json bench-allocs vet lint fuzz-short experiments ci

# Pinned linter versions — keep in sync with .github/workflows/ci.yml.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

all: build test

build:
	$(GO) build ./...

# Tier-1: the gate every change must pass (see ROADMAP.md).
test: build
	$(GO) test ./...

# Tier-2: race-detect the parallel pipeline — the sharded/broadcast fan-out
# stages and their consumers — plus the trace codec, the CLI plumbing, and
# the networked service layer (server, sessions, client, checkpoints), then
# style checks and a short fuzz of every binary decoder. Run this for any
# change touching internal/profiler, internal/whomp, internal/leap,
# internal/stride, internal/tracefmt, internal/cliutil, internal/serve, or
# internal/checkpoint.
test-race: vet
	$(GO) test -race ./internal/profiler/... ./internal/whomp/... \
		./internal/leap/... ./internal/stride/... ./internal/decomp/... \
		./internal/tracefmt/... ./internal/cliutil/... \
		./internal/serve/... ./internal/checkpoint/...
	$(MAKE) fuzz-short

# Fault-tolerance soak: every workload × every fault class (corrupt byte,
# truncation, field flip, producer/worker panic, stall + deadline) through
# the salvage paths, plus the network soak (daemon kill/restart with
# resume, connection resets, stalled reads, partial writes, refused
# connections) and the cluster soak (shard and router kill/restart
# mid-stream with byte-identical merged reports, flapping/slow/partitioned
# shards), with goroutine-leak checks. Run this for any change touching
# the error model, tracefmt resync, the salvage entry points, or the
# service layer.
test-soak: build
	$(GO) test -run 'TestSoak' -timeout 600s -v .

# The soak suite again, under the race detector and with test order
# shuffled: migrations, router failover, and admin replication are
# multi-goroutine dances whose bugs hide in schedules a plain run never
# explores. Shuffling catches cross-test state leakage; the printed seed
# reproduces an ordering.
test-soak-race: build
	$(GO) test -race -shuffle=on -run 'TestSoak' -timeout 900s .

# Everything a CI run should gate on: tier-1, tier-2, static analysis,
# the zero-alloc hot-path gate, and the soaks (plain, then race+shuffle).
ci: test test-race lint bench-allocs test-soak test-soak-race

# Static analysis + known-vulnerability scan. The tools are not vendored;
# if they are missing locally the target says how to get them and skips
# (CI installs the pinned versions, so the gate is real there).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping" \
			"(go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping" \
			"(go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# Skip the CLI integration tests (they build all binaries).
test-short:
	$(GO) test -short ./...

# Hot-path + end-to-end benchmarks (see docs/PERFORMANCE.md for the
# methodology and the maintained baseline table). -count defaults to 6 so
# the output feeds straight into benchstat; BENCH_OUT captures the run for
# comparison, e.g.
#   make bench BENCH_OUT=before.txt
#   ...change...
#   make bench BENCH_OUT=after.txt && benchstat before.txt after.txt
# To emit benchmark JSON for dashboards: make bench-json (BENCH_hotpath.json).
BENCH ?= BenchmarkEventLoop|BenchmarkIngestEndToEnd|BenchmarkWorkloadIngest|BenchmarkOptimizePipeline|BenchmarkClusterIngest
BENCH_COUNT ?= 6
BENCH_OUT ?= /dev/stdout
bench:
	$(GO) test -run=xxx -bench='$(BENCH)' -benchmem -count=$(BENCH_COUNT) \
		-timeout 60m . | tee $(BENCH_OUT)

# Same suite once, as `go test -json` output, for machine consumption.
bench-json:
	$(GO) test -run=xxx -bench='$(BENCH)' -benchmem -timeout 60m -json . \
		> BENCH_hotpath.json

# The zero-alloc gate: fails if the steady-state event loop (translate +
# WHOMP/LEAP/stride consumption, alloc/free churn included) performs any
# per-event heap allocation, or if the soabtree steady state allocates.
# Cheap enough to run on every CI push — catches alloc regressions at the
# PR that introduces them, not at the next quarterly profile.
bench-allocs:
	$(GO) test -run 'TestEventLoopSteadyStateAllocs' -count=1 .
	$(GO) test -run 'TestZeroAllocSteadyState' -count=1 ./internal/soabtree/
	$(GO) test -run 'TestSketchUpdateZeroAlloc' -count=1 ./internal/sketch/

# Regenerate the before/after optimization tables (the "Closing the loop"
# section of EXPERIMENTS.md): one `ormprof optimize` run per workload —
# the seven Table 1 benchmarks plus the two layout showcases. Output is
# deterministic (byte-identical for any -workers), so diffs against the
# committed tables are real changes, not noise.
experiments: build
	@for w in 164.gzip 175.vpr 181.mcf 186.crafty 197.parser 256.bzip2 300.twolf hotcold chase; do \
		echo "== $$w =="; \
		$(GO) run ./cmd/ormprof optimize -workload $$w -plan none; \
		echo; \
	done

vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

# Short fuzz pass over every decoder that parses untrusted bytes: the trace
# reader, the profile/grammar decoders, and the ORMP/1 ingest paths (a live
# server connection, and the router's routing path in front of a live
# shard). ~$(FUZZTIME) per target.
fuzz-short:
	$(GO) test -fuzz='^FuzzReader$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt/
	$(GO) test -fuzz='^FuzzReaderResync$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/tracefmt/
	$(GO) test -fuzz=FuzzReadProfile -fuzztime=$(FUZZTIME) ./internal/whomp/
	$(GO) test -fuzz=FuzzReadProfile -fuzztime=$(FUZZTIME) ./internal/leap/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/sequitur/
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/sequitur/
	$(GO) test -fuzz=FuzzTreeOps -fuzztime=$(FUZZTIME) ./internal/soabtree/
	$(GO) test -fuzz=FuzzPlanReader -fuzztime=$(FUZZTIME) ./internal/plan/
	$(GO) test -fuzz='^FuzzSession$$' -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz='^FuzzRouter$$' -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz='^FuzzRouterTable$$' -fuzztime=$(FUZZTIME) ./internal/checkpoint/
	$(GO) test -fuzz='^FuzzCountMin$$' -fuzztime=$(FUZZTIME) ./internal/sketch/
	$(GO) test -fuzz='^FuzzBloom$$' -fuzztime=$(FUZZTIME) ./internal/sketch/
