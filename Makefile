# Developer / CI entry points. Tier-1 is what every PR must keep green;
# test-race is the tier-2 check for the concurrent pipeline stages.

GO ?= go

.PHONY: all build test test-race test-short bench vet

all: build test

build:
	$(GO) build ./...

# Tier-1: the gate every change must pass (see ROADMAP.md).
test: build
	$(GO) test ./...

# Tier-2: race-detect the parallel pipeline — the sharded/broadcast fan-out
# stages and their consumers. Run this for any change touching
# internal/profiler, internal/whomp, internal/leap, or internal/stride.
test-race:
	$(GO) test -race ./internal/profiler/... ./internal/whomp/... \
		./internal/leap/... ./internal/stride/... ./internal/decomp/...

# Skip the CLI integration tests (they build all binaries).
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...
