package ormprof

// Integration tests for the command-line tools: each binary is built once
// and driven end to end with small workloads, asserting the key lines of
// its output. These catch wiring regressions (flag plumbing, file I/O,
// formats) that package-level unit tests cannot see.

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ormprof/internal/tracefmt"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles all cmd/ binaries into a shared temp dir, once.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "ormprof-cli")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v\n%s", buildErr, buildDir)
	}
	return buildDir
}

// runTool executes a built binary and returns its combined output.
func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(buildTools(t), name)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func wantContains(t *testing.T, out string, subs ...string) {
	t.Helper()
	for _, s := range subs {
		if !strings.Contains(out, s) {
			t.Errorf("output missing %q:\n%s", s, out)
		}
	}
}

func TestCLIWhompSingleWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	profile := filepath.Join(dir, "ll.whomp")
	out := runTool(t, "whomp", "-workload", "linkedlist", "-o", profile)
	wantContains(t, out, "workload linkedlist", "RASG:", "OMSG:", "smaller", "wrote")
	if _, err := os.Stat(profile); err != nil {
		t.Fatalf("profile not written: %v", err)
	}

	// The umbrella tool must identify the file.
	out = runTool(t, "ormprof", "inspect", profile)
	wantContains(t, out, "WHOMP profile", `workload "linkedlist"`, "object table")
}

func TestCLILeapSingleWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	profile := filepath.Join(dir, "p.leap")
	out := runTool(t, "leap", "-workload", "197.parser", "-o", profile)
	wantContains(t, out, "workload 197.parser", "sample quality", "compression")

	out = runTool(t, "ormprof", "inspect", profile)
	wantContains(t, out, "LEAP profile", "streams", "sample quality")
}

func TestCLIWorkersFlagDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	// -workers must change only the wall-clock, never the bytes written:
	// profiles collected with 1 and 4 workers are identical files.
	dir := t.TempDir()
	read := func(path string) []byte {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return b
	}

	w1 := filepath.Join(dir, "w1.whomp")
	w4 := filepath.Join(dir, "w4.whomp")
	runTool(t, "whomp", "-workload", "linkedlist", "-workers", "1", "-o", w1)
	runTool(t, "whomp", "-workload", "linkedlist", "-workers", "4", "-o", w4)
	if !bytes.Equal(read(w1), read(w4)) {
		t.Errorf("whomp profiles differ between -workers 1 and -workers 4")
	}

	l1 := filepath.Join(dir, "l1.leap")
	l4 := filepath.Join(dir, "l4.leap")
	runTool(t, "leap", "-workload", "linkedlist", "-workers", "1", "-o", l1)
	runTool(t, "leap", "-workload", "linkedlist", "-workers", "4", "-o", l4)
	if !bytes.Equal(read(l1), read(l4)) {
		t.Errorf("leap profiles differ between -workers 1 and -workers 4")
	}
}

func TestCLIRecordAndReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	tr := filepath.Join(dir, "t.ormtrace")
	out := runTool(t, "ormprof", "record", "-workload", "linkedlist", "-o", tr)
	wantContains(t, out, "recorded linkedlist", "loads", "stores")

	read := func(path string) []byte {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return b
	}

	// A trace teed off a live profiling run (-record) is byte-identical to
	// one written by the dedicated record command.
	teed := filepath.Join(dir, "teed.ormtrace")
	runTool(t, "whomp", "-workload", "linkedlist", "-record", teed)
	if !bytes.Equal(read(tr), read(teed)) {
		t.Errorf("ormprof record and whomp -record wrote different traces")
	}

	// "Collect once, profile many": a profile built from the replayed trace
	// must be byte-identical to one built live, for every worker count.
	liveProfile := filepath.Join(dir, "live.whomp")
	runTool(t, "whomp", "-workload", "linkedlist", "-o", liveProfile)
	for _, workers := range []string{"1", "2", "8"} {
		replayed := filepath.Join(dir, "replay-w"+workers+".whomp")
		runTool(t, "whomp", "-replay", tr, "-workers", workers, "-o", replayed)
		if !bytes.Equal(read(liveProfile), read(replayed)) {
			t.Errorf("replayed profile (workers=%s) differs from live profile", workers)
		}
	}

	lLive := filepath.Join(dir, "live.leap")
	runTool(t, "leap", "-workload", "linkedlist", "-o", lLive)
	for _, workers := range []string{"1", "2", "8"} {
		replayed := filepath.Join(dir, "replay-w"+workers+".leap")
		runTool(t, "leap", "-replay", tr, "-workers", workers, "-o", replayed)
		if !bytes.Equal(read(lLive), read(replayed)) {
			t.Errorf("replayed LEAP profile (workers=%s) differs from live profile", workers)
		}
	}

	// The deprecated whomp -trace alias still replays: same OMSG line.
	live := runTool(t, "whomp", "-workload", "linkedlist")
	replay := runTool(t, "whomp", "-trace", tr)
	pick := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "OMSG:") {
				return strings.TrimSpace(line)
			}
		}
		return ""
	}
	if pick(live) == "" || pick(live) != pick(replay) {
		t.Errorf("live and replayed OMSG lines differ:\n live:   %q\n replay: %q", pick(live), pick(replay))
	}

	// inspect recognizes the trace file.
	out = runTool(t, "ormprof", "inspect", tr)
	wantContains(t, out, "ORMTRACE", `workload "linkedlist"`, "loads")
}

func TestCLITracecat(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	tr := filepath.Join(dir, "t.ormtrace")
	runTool(t, "ormprof", "record", "-workload", "linkedlist", "-o", tr)

	out := runTool(t, "tracecat", "-stats", tr)
	wantContains(t, out, `workload "linkedlist"`, "events:", "loads", "distinct instructions")

	// -count with a filter: allocs only.
	count := strings.TrimSpace(runTool(t, "tracecat", "-count", "-kind", "alloc", tr))
	if count == "0" || count == "" {
		t.Errorf("expected a nonzero alloc count, got %q", count)
	}

	// Printing with a limit reports the remainder.
	out = runTool(t, "tracecat", "-n", "3", tr)
	wantContains(t, out, "more matching records")

	// Time-range + instruction filters compose.
	out = runTool(t, "tracecat", "-kind", "access", "-from", "0", "-to", "50", tr)
	if !strings.Contains(out, "i") {
		t.Errorf("expected access records in [0,50]:\n%s", out)
	}
}

// TestCLIFlagValidation drives every tool with malformed -workers and
// -mem-budget values. The contract is uniform: the parse-time error and
// the tool's usage text go to stderr (stdout stays empty — nothing ran),
// and the process exits 2. Self-validating flag.Values under
// flag.ExitOnError give every binary this behavior without per-main code.
func TestCLIFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	cases := []struct {
		tool string
		args []string
		want string // substring of the stderr error line
	}{
		{"whomp", []string{"-workers", "0"}, "must be at least 1"},
		{"whomp", []string{"-mem-budget", "banana"}, "not a size"},
		{"leap", []string{"-workers", "-3"}, "must be at least 1"},
		{"leap", []string{"-mem-budget", "-4K"}, "must be non-negative"},
		{"stridescan", []string{"-workers", "x"}, "must be an integer"},
		{"stridescan", []string{"-mem-budget", "10Q"}, "not a size"},
		{"mdep", []string{"-mem-budget", "1.5M"}, "not a size"},
		{"phasescan", []string{"-mem-budget", ""}, "not a size"},
		{"layoutopt", []string{"-mem-budget", "nope"}, "not a size"},
		{"layoutopt", []string{"-deadline", "soon"}, "invalid value"},
		{"ormprof", []string{"translate", "-mem-budget", "zz"}, "not a size"},
		{"ormprof", []string{"grammar", "-workers", "0"}, "must be at least 1"},
		{"ormprof", []string{"optimize", "-workers", "0"}, "must be at least 1"},
		{"ormprof", []string{"optimize", "-workers", "two"}, "must be an integer"},
		{"ormprof", []string{"optimize", "-mem-budget", "plenty"}, "not a size"},
		{"tracecat", []string{"-mem-budget", "huge"}, "not a size"},
		{"ormpd", []string{"-mem-budget", "-1"}, "must be non-negative"},
		{"ormpd", []string{"-global-mem-budget", "lots"}, "not a size"},
		{"ormpd", []string{"-cluster-mem-budget", "nope"}, "not a size"},
		// Cluster flag validation: malformed shard lists die at parse time,
		// cross-flag conflicts die in the same exit-2-plus-usage shape.
		{"ormpd", []string{"-cluster", "-shards", "a:1,a:1"}, "duplicate element"},
		{"ormpd", []string{"-cluster", "-shards", "a:1,,b:1"}, "empty element in list"},
		{"ormpd", []string{"-cluster", "-local-shards", "0"}, "must be at least 1"},
		{"ormpd", []string{"-cluster", "-local-shards", "two"}, "must be an integer"},
		{"ormpd", []string{"-cluster"}, "-cluster needs -shards"},
		{"ormpd", []string{"-shards", "a:1"}, "require -cluster"},
		{"ormpd", []string{"-local-shards", "2"}, "require -cluster"},
		{"ormpd", []string{"-cluster", "-shards", "a:1", "-local-shards", "2"}, "mutually exclusive"},
		{"ormpd", []string{"-cluster", "-local-shards", "2", "-merge", "d1"}, "-merge and -cluster are mutually exclusive"},
		// Reconfiguration flag validation: the admin/ctl/replication flags
		// fail the same way — usage on stderr, exit 2, nothing run.
		{"ormpd", []string{"-ctl", "status"}, "-ctl needs -admin"},
		{"ormpd", []string{"-ctl", "add-shard", "-admin", "h:1"}, "needs -shard"},
		{"ormpd", []string{"-ctl", "remove-shard", "-admin", "h:1"}, "needs -shard"},
		{"ormpd", []string{"-ctl", "resize", "-admin", "h:1"}, "unknown -ctl command"},
		{"ormpd", []string{"-ctl", "status", "-admin", "h:1", "-shard", "h:2"}, "takes no -shard"},
		{"ormpd", []string{"-ctl", "status", "-admin", "h:1", "-cluster", "-local-shards", "2"}, "does not combine"},
		{"ormpd", []string{"-ctl", "add-shard", "-admin", "h:1", "-shard", "h:2", "-epoch", "-1"}, "invalid value"},
		{"ormpd", []string{"-standby"}, "-standby applies to router mode"},
		{"ormpd", []string{"-cluster", "-shards", "a:1", "-standby"}, "-standby needs -active"},
		{"ormpd", []string{"-cluster", "-shards", "a:1", "-peers", "p:1,p:1"}, "duplicate element"},
		{"ormpd", []string{"-routers", "2"}, "-routers requires -local-shards"},
		{"ormpd", []string{"-cluster", "-local-shards", "2", "-routers", "0"}, "must be at least 1"},
		{"ormpush", []string{"-addrs", "h:1,,h:2"}, "empty element in list"},
		{"ormpush", []string{"-addrs", "h:1,h:1"}, "duplicate element"},
		// -approx validation: every binary that profiles rejects malformed
		// values at parse time, and the two tools with cross-flag
		// constraints (tracecat needs -stats, ormpd's merge plane folds
		// sketches rather than taking the flag) fail in the same shape.
		{"whomp", []string{"-approx=banana"}, "invalid boolean value"},
		{"leap", []string{"-approx=2.5"}, "invalid boolean value"},
		{"stridescan", []string{"-approx=yep"}, "invalid boolean value"},
		{"mdep", []string{"-approx=maybe"}, "invalid boolean value"},
		{"phasescan", []string{"-approx="}, "invalid boolean value"},
		{"layoutopt", []string{"-approx=null"}, "invalid boolean value"},
		{"ormprof", []string{"optimize", "-approx=x"}, "invalid boolean value"},
		{"tracecat", []string{"-approx=no!"}, "invalid boolean value"},
		{"tracecat", []string{"-approx", "x.ormtrace"}, "-approx requires -stats"},
		{"ormpd", []string{"-approx=banana"}, "invalid boolean value"},
		{"ormpd", []string{"-approx", "-merge", "d1"}, "does not combine with -merge"},
	}
	for _, tc := range cases {
		bin := filepath.Join(buildTools(t), tc.tool)
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, tc.args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		if err == nil {
			t.Errorf("%s %v: accepted invalid flag\nstdout:\n%s", tc.tool, tc.args, stdout.String())
			continue
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Errorf("%s %v: %v", tc.tool, tc.args, err)
			continue
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("%s %v: exit code %d, want 2\nstderr:\n%s", tc.tool, tc.args, code, stderr.String())
		}
		if got := stderr.String(); !strings.Contains(got, tc.want) {
			t.Errorf("%s %v: stderr missing %q:\n%s", tc.tool, tc.args, tc.want, got)
		} else if !strings.Contains(got, "Usage of") {
			t.Errorf("%s %v: stderr missing usage text:\n%s", tc.tool, tc.args, got)
		}
		if stdout.Len() != 0 {
			t.Errorf("%s %v: flag errors must not write to stdout, got:\n%s", tc.tool, tc.args, stdout.String())
		}
	}
}

// TestCLIApprox drives the -approx sketch path end to end: an approx run
// is a request, not degradation — it exits 0 and its report leads with
// the error accounting; the output is byte-identical for every -workers
// count; tracecat -stats -approx prints the top-K heavy hitters; and a
// -mem-budget too small even for the sketches pushes the ladder further
// down and flips the exit code to 2.
func TestCLIApprox(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	tr := filepath.Join(dir, "t.ormtrace")
	runTool(t, "ormprof", "record", "-workload", "linkedlist", "-o", tr)

	out := runToolExit(t, 0, "whomp", "-replay", tr, "-approx", "-workers", "1")
	wantContains(t, out, "mode sketch-stride", "approx sketch-stride",
		"epsilon", "delta", "error-bound", "hot")

	// Governed runs are sequential, so the sketches see the same stream in
	// the same order regardless of -workers.
	for _, workers := range []string{"2", "8"} {
		if got := runToolExit(t, 0, "whomp", "-replay", tr, "-approx", "-workers", workers); got != out {
			t.Errorf("-approx output differs between -workers 1 and -workers %s", workers)
		}
	}

	// The same flag rides the live-workload path and the other profilers.
	out = runToolExit(t, 0, "leap", "-workload", "linkedlist", "-approx")
	wantContains(t, out, "approx sketch-stride", "error-bound")

	// tracecat -stats -approx summarizes with the heavy hitters and their
	// one-sided overcount bounds.
	out = runToolExit(t, 0, "tracecat", "-stats", "-approx", tr)
	wantContains(t, out, "approximate summary", "hot cache lines", "line 0x", "err")

	// -approx composes with -mem-budget: the sketches hold fixed memory,
	// but a budget below even that fixed footprint still degrades, and the
	// exit-2 convention reports it.
	out = runToolExit(t, 2, "whomp", "-replay", tr, "-approx", "-mem-budget", "1K")
	wantContains(t, out, "profiling degraded to")
}

func TestCLIReplaySingleWorkloadTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	tr := filepath.Join(dir, "t.ormtrace")
	runTool(t, "ormprof", "record", "-workload", "197.parser", "-o", tr)

	// Every analysis tool accepts -replay and names the workload from the
	// trace header.
	out := runTool(t, "stridescan", "-replay", tr)
	wantContains(t, out, "workload 197.parser")

	out = runTool(t, "mdep", "-replay", tr)
	wantContains(t, out, "197.parser", "LEAP", "Connors")

	out = runTool(t, "layoutopt", "-replay", tr)
	wantContains(t, out, "workload 197.parser", "original layout")

	out = runTool(t, "phasescan", "-replay", tr)
	wantContains(t, out, "197.parser", "Monolithic capture")

	out = runTool(t, "ormprof", "groups", "-replay", tr)
	wantContains(t, out, "Objects")
}

func TestCLIOrmprofSubcommands(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "ormprof", "translate", "-workload", "linkedlist", "-n", "4")
	wantContains(t, out, "(ld1, 1, 0, 0, t0)", "translated")

	out = runTool(t, "ormprof", "groups", "-workload", "186.crafty")
	wantContains(t, out, "attack_table", "board", "Objects")

	out = runTool(t, "ormprof", "regularity", "-workload", "164.gzip", "-n", "5")
	wantContains(t, out, "REGULAR", "irregular", "separation")

	out = runTool(t, "ormprof", "locality", "-workload", "197.parser")
	wantContains(t, out, "LRU capacity", "Line miss ratio", "Object miss ratio")
}

func TestCLIStrideScan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "stridescan")
	wantContains(t, out, "Figure 9", "average stride score")
}

func TestCLILayoutOpt(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "layoutopt", "-workload", "197.parser")
	wantContains(t, out, "original layout", "field reordering", "object clustering")
}

// TestCLIOptimize drives the closed PGO loop end-to-end: the text report
// is byte-identical for any -workers count, the ORMPLAN artifacts from a
// live run and a recorded-trace replay of the same workload are
// byte-identical, the clustering showcase improves, and the documented
// unimprovable pointer chase does not.
func TestCLIOptimize(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	tr := filepath.Join(dir, "hc.ormtrace")
	runTool(t, "ormprof", "record", "-workload", "hotcold", "-o", tr)

	livePlan := filepath.Join(dir, "live.ormplan")
	liveOut := runTool(t, "ormprof", "optimize", "-workload", "hotcold", "-plan", livePlan, "-workers", "1")
	wantContains(t, liveOut, "workload hotcold", "field orders", "placements",
		"applied via live re-run", "L1D", "L2", "AMAT")

	// Byte-identical output across worker counts.
	for _, n := range []string{"2", "8"} {
		out := runTool(t, "ormprof", "optimize", "-workload", "hotcold", "-plan", "none", "-workers", n)
		// The only difference vs liveOut is the plan-path suffix; strip it.
		if want := strings.ReplaceAll(liveOut, " -> "+livePlan, ""); out != want {
			t.Errorf("-workers %s output differs:\n--- workers=1 ---\n%s--- workers=%s ---\n%s", n, want, n, out)
		}
	}

	// Replay of the recorded trace derives the byte-identical plan.
	replayPlan := filepath.Join(dir, "replay.ormplan")
	replayOut := runTool(t, "ormprof", "optimize", "-replay", tr, "-plan", replayPlan)
	wantContains(t, replayOut, "applied via replay resolution")
	lp, err := os.ReadFile(livePlan)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := os.ReadFile(replayPlan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lp, rp) {
		t.Errorf("live and replay plans differ (%d vs %d bytes)", len(lp), len(rp))
	}

	// hotcold is built so clustering wins visibly; chase so it can't.
	if !strings.Contains(liveOut, "-69.6%") {
		t.Errorf("hotcold L1 miss reduction missing:\n%s", liveOut)
	}
	chaseOut := runTool(t, "ormprof", "optimize", "-workload", "chase", "-plan", "none")
	if !strings.Contains(chaseOut, "(0.0% faster)") {
		t.Errorf("chase should be unimprovable:\n%s", chaseOut)
	}

	// CSV rendering of the delta table.
	csvOut := runTool(t, "ormprof", "optimize", "-workload", "chase", "-plan", "none", "-csv")
	wantContains(t, csvOut, "level,geometry,before-misses", "L1D,")
}

func TestCLIPhaseScan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "phasescan", "-workload", "256.bzip2")
	wantContains(t, out, "Phases", "Monolithic capture", "Phase-cognizant capture")
}

func TestCLIInspectRejectsGarbage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(buildTools(t), "ormprof")
	out, err := exec.Command(bin, "inspect", bad).CombinedOutput()
	if err == nil {
		t.Fatalf("inspect accepted garbage:\n%s", out)
	}
	if !strings.Contains(string(out), "not a WHOMP profile, LEAP profile, or ORMTRACE trace") {
		t.Errorf("unexpected error output: %s", out)
	}
}

func TestCLIDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.leap")
	b := filepath.Join(dir, "b.leap")
	runTool(t, "leap", "-workload", "197.parser", "-seed", "1", "-o", a)
	runTool(t, "leap", "-workload", "197.parser", "-seed", "2", "-scale", "2", "-o", b)
	out := runTool(t, "ormprof", "diff", a, b)
	wantContains(t, out, "Execs A", "Execs B", "sample quality")
	if !strings.Contains(out, "+100") {
		t.Errorf("expected ~+100%% exec deltas for a 2x-scale run:\n%s", out)
	}
	// Identical runs: no differences.
	out = runTool(t, "ormprof", "diff", a, a)
	wantContains(t, out, "no significant per-instruction differences")
}

func TestCLIGrammar(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "ormprof", "grammar", "-workload", "linkedlist", "-dim", "offset", "-n", "3")
	wantContains(t, out, "offset-dimension grammar", "hottest rules", "[0 8")
}

func TestCLIRegenLossless(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	profile := filepath.Join(dir, "ll.whomp")
	regen := filepath.Join(dir, "regen.ormtrace")
	runTool(t, "whomp", "-workload", "linkedlist", "-o", profile)
	out := runTool(t, "ormprof", "regen", "-o", regen, profile)
	wantContains(t, out, "regenerated 2560 accesses", "wrote")
	// The first access of the linked-list trace is instruction 1 at the
	// first node (heap base).
	wantContains(t, out, "i1", "0x40000000")
}

func TestCLIMdep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "mdep")
	wantContains(t, out, "Figure 6", "Figure 7", "Figure 8", "LEAP", "Connors")
}

func TestCLICSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "leap", "-csv")
	wantContains(t, out, "Benchmark,Accesses,Compression", "164.gzip,")
	if strings.Contains(out, "paper averages") {
		t.Error("CSV mode should suppress prose")
	}
}

// runToolExit executes a built binary and asserts its exact exit code —
// the tools' 0/1/2 (clean/hard-failure/salvaged) convention is part of
// their contract.
func runToolExit(t *testing.T, wantCode int, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(buildTools(t), name)
	out, err := exec.Command(bin, args...).CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		code = ee.ExitCode()
	}
	if code != wantCode {
		t.Fatalf("%s %v: exit code %d, want %d\n%s", name, args, code, wantCode, out)
	}
	return string(out)
}

// corruptTrace writes a many-frame linkedlist trace and returns both the
// pristine path and a copy with one payload byte of the second frame
// flipped. The small batch size guarantees multiple frames, so the damage
// costs one frame and the rest salvages.
func corruptTrace(t *testing.T, dir string) (clean, damaged string) {
	t.Helper()
	buf, sites, _ := recordWorkload(t, "linkedlist")
	var enc bytes.Buffer
	tw := tracefmt.NewWriter(&enc, tracefmt.WithName("linkedlist"), tracefmt.WithBatch(64))
	tw.SetSites(sites)
	for _, e := range buf.Events {
		tw.Emit(e)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	data := enc.Bytes()
	clean = filepath.Join(dir, "clean.ormtrace")
	if err := os.WriteFile(clean, data, 0o644); err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(data, []byte(tracefmt.FrameMagic))
	if idx < 0 {
		t.Fatal("no frame marker in recorded trace")
	}
	second := bytes.Index(data[idx+1:], []byte(tracefmt.FrameMagic))
	if second < 0 {
		t.Fatal("trace has only one frame")
	}
	bad := bytes.Clone(data)
	bad[idx+1+second+12] ^= 0x5a // inside the second frame's payload
	damaged = filepath.Join(dir, "damaged.ormtrace")
	if err := os.WriteFile(damaged, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	return clean, damaged
}

func TestCLITracecatVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	clean, damaged := corruptTrace(t, dir)

	// Clean trace: exit 0 with an OK verdict.
	out := runToolExit(t, 0, "tracecat", "-verify", clean)
	wantContains(t, out, "OK:", "no damage")

	// Damaged trace: exit 2 with a damage report naming what was lost.
	out = runToolExit(t, 2, "tracecat", "-verify", damaged)
	wantContains(t, out, "DAMAGED", "corruption incident", "salvaged", "frames skipped")

	// Unreadable file: exit 1.
	garbage := filepath.Join(dir, "garbage.ormtrace")
	if err := os.WriteFile(garbage, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	runToolExit(t, 1, "tracecat", "-verify", garbage)
}

func TestCLILenientExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	_, damaged := corruptTrace(t, dir)

	// Strict mode fails fast: exit 1, no salvage.
	out := runToolExit(t, 1, "tracecat", "-count", damaged)
	wantContains(t, out, "tracecat:")

	// Lenient tracecat salvages the readable records and exits 2.
	out = runToolExit(t, 2, "tracecat", "-lenient", "-count", damaged)
	if !strings.Contains(out, "damaged but salvaged") {
		t.Errorf("lenient tracecat should report the corruption:\n%s", out)
	}

	// Strict replay through a profiler: exit 1.
	runToolExit(t, 1, "whomp", "-replay", damaged)

	// Lenient replay: the partial profile still prints, exit 2.
	out = runToolExit(t, 2, "whomp", "-replay", damaged, "-lenient")
	wantContains(t, out, "OMSG:")

	out = runToolExit(t, 2, "leap", "-replay", damaged, "-lenient")
	wantContains(t, out, "sample quality")

	out = runToolExit(t, 2, "ormprof", "translate", "-replay", damaged, "-lenient")
	wantContains(t, out, "translated")
}

func TestCLIDeadlineExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	clean, _ := corruptTrace(t, dir)

	// An immediate deadline cuts every pass short: still a report, exit 2.
	out := runToolExit(t, 2, "whomp", "-replay", clean, "-deadline", "1ns")
	wantContains(t, out, "deadline exceeded")

	// A generous deadline changes nothing: clean exit.
	runToolExit(t, 0, "whomp", "-replay", clean, "-deadline", "5m")
}

// TestCLIClusterRoundTrip drives the cluster modes through the real
// binaries: an all-in-one `ormpd -cluster -local-shards 2` daemon,
// `ormpush` streaming sessions through its router, a graceful SIGTERM
// that merges the cluster report, and an offline `ormpd -merge` over the
// same shard final dirs that must reproduce the report byte-for-byte.
func TestCLIClusterRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	clusterDir := filepath.Join(dir, "cluster")
	reportDir := filepath.Join(dir, "report")

	daemon := exec.Command(filepath.Join(bins, "ormpd"),
		"-cluster", "-local-shards", "2",
		"-listen", "127.0.0.1:0",
		"-checkpoints", clusterDir,
		"-out", reportDir,
		"-checkpoint-every", "2")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	// The daemon announces its router address (ephemeral port) on stderr.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "cluster on "); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		t.Fatal("daemon never announced its address")
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	for _, session := range []string{"cli-a", "cli-b", "cli-c"} {
		out := runTool(t, "ormpush",
			"-addr", addr, "-workload", "linkedlist", "-session", session, "-quiet")
		wantContains(t, out, "pushed linkedlist")
	}

	// Graceful shutdown merges the cluster report.
	if err := daemon.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
	report := make(map[string][]byte)
	for _, name := range []string{"cluster.leap", "cluster.stride", "cluster.whomp"} {
		b, err := os.ReadFile(filepath.Join(reportDir, name))
		if err != nil {
			t.Fatalf("cluster report: %v", err)
		}
		report[name] = b
	}

	// The offline merge plane over the same shard final dirs reproduces
	// the report exactly.
	remergeDir := filepath.Join(dir, "remerge")
	finals := filepath.Join(clusterDir, "shard0", "final") + "," +
		filepath.Join(clusterDir, "shard1", "final")
	out := runTool(t, "ormpd", "-merge", finals, "-out", remergeDir)
	wantContains(t, out, "merged 3 session(s)")
	for name, b := range report {
		got, err := os.ReadFile(filepath.Join(remergeDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, b) {
			t.Errorf("%s: offline -merge differs from the daemon's shutdown merge", name)
		}
	}
}

// A stock single-node daemon started with -final is a valid cluster
// shard: its final states feed the offline merge plane. This is the
// multi-host deployment path, where the shards are not -local-shards.
func TestCLISingleNodeFinalStates(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	finalDir := filepath.Join(dir, "final")

	daemon := exec.Command(filepath.Join(bins, "ormpd"),
		"-listen", "127.0.0.1:0",
		"-checkpoints", filepath.Join(dir, "ckpt"),
		"-out", filepath.Join(dir, "profiles"),
		"-final", finalDir)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		t.Fatal("daemon never announced its address")
	}
	go io.Copy(io.Discard, stderr)

	out := runTool(t, "ormpush",
		"-addr", addr, "-workload", "linkedlist", "-session", "solo", "-quiet")
	wantContains(t, out, "pushed linkedlist")

	// The final state is durable before the client's Bye — no shutdown
	// needed before merging it.
	if _, err := os.Stat(filepath.Join(finalDir, "solo.final")); err != nil {
		t.Fatalf("final state: %v", err)
	}
	out = runTool(t, "ormpd", "-merge", finalDir, "-out", filepath.Join(dir, "report"))
	wantContains(t, out, "merged 1 session(s)")

	if err := daemon.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
}
