// Command leap collects LEAP (lossy LMAD) profiles for the benchmark
// workloads and prints the paper's Table 1: compression ratio, time
// dilation, and sample quality.
//
// Usage:
//
//	leap [-workload NAME] [-scale N] [-seed N] [-max-lmads N] [-workers N] [-o profile.leap]
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/experiments"
	"ormprof/internal/leap"
	"ormprof/internal/report"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "run a single workload (default: all seven)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		maxLMADs = flag.Int("max-lmads", 0, "LMAD budget per (instruction, group) stream (0 = paper default of 30)")
		out      = flag.String("o", "", "write the LEAP profile of the (single) workload to this file")
		csvOut   = flag.Bool("csv", false, "emit the Table 1 rows as CSV (for plotting)")
		workers  = flag.Int("workers", 0, "stream-compression workers (0 = GOMAXPROCS; profiles are identical for any count)")
	)
	flag.Parse()

	cfg := workloads.Config{Scale: *scale, Seed: *seed}
	if *workload != "" {
		if err := runOne(*workload, cfg, *maxLMADs, *out, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "leap:", err)
			os.Exit(1)
		}
		return
	}

	rows := experiments.Table1(cfg, *maxLMADs)
	avg := experiments.Table1Average(rows)
	tbl := report.NewTable("Benchmark", "Accesses", "Compression", "Dilation", "Accesses captured", "Instrs captured")
	for _, r := range append(rows, avg) {
		tbl.AddRowf(r.Benchmark, r.Accesses, report.Ratio(r.Compression),
			fmt.Sprintf("%.1f", r.Dilation), report.Pct(r.AccPct), report.Pct(r.InstrPct))
	}
	if *csvOut {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "leap:", err)
			os.Exit(1)
		}
		return
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout
	fmt.Printf("\nTable 1 (paper averages: 3539x compression, 11.5x dilation, 46.5%% accesses, 40.5%% instructions)\n")
}

func runOne(name string, cfg workloads.Config, maxLMADs int, out string, workers int) error {
	prog, err := workloads.New(name, cfg)
	if err != nil {
		return err
	}
	buf, sites := experiments.Record(prog, nil)

	lp := leap.NewParallel(sites, maxLMADs, workers)
	buf.Replay(lp)
	profile := lp.Profile(name)

	accPct, instrPct := profile.SampleQuality()
	fmt.Printf("workload %s: %d accesses, %d streams, %d LMADs\n",
		name, profile.Records, len(profile.Streams), profile.TotalLMADs())
	fmt.Printf("  profile: %d bytes (compression %.0fx)\n", profile.EncodedSize(), profile.CompressionRatio())
	fmt.Printf("  sample quality: %.1f%% of accesses, %.1f%% of instructions\n", accPct, instrPct)

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := profile.WriteTo(f); err != nil {
			return err
		}
		fmt.Printf("  wrote profile to %s\n", out)
	}
	return nil
}
