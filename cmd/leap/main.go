// Command leap collects LEAP (lossy LMAD) profiles for the benchmark
// workloads and prints the paper's Table 1: compression ratio, time
// dilation, and sample quality.
//
// Usage:
//
//	leap [-workload NAME] [-scale N] [-seed N] [-max-lmads N] [-workers N] [-o profile.leap]
//	     [-record trace.ormtrace | -replay trace.ormtrace]
//
// -record writes the probe trace alongside the live profile; -replay
// profiles a recorded trace instead of running a workload and produces a
// byte-identical profile.
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/experiments"
	"ormprof/internal/govern"
	"ormprof/internal/leap"
	"ormprof/internal/report"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "run a single workload (default: all seven)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		maxLMADs = flag.Int("max-lmads", 0, "LMAD budget per (instruction, group) stream (0 = paper default of 30)")
		out      = flag.String("o", "", "write the LEAP profile of the (single) workload to this file")
		csvOut   = flag.Bool("csv", false, "emit the Table 1 rows as CSV (for plotting)")
	)
	workers := cliutil.WorkersFlag(flag.CommandLine)
	tf := cliutil.RegisterTraceFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*workload, workloads.Config{Scale: *scale, Seed: *seed}, *maxLMADs, *out, *csvOut, *workers, tf); err != nil {
		cliutil.Fatal("leap", err)
	}
}

func run(workload string, cfg workloads.Config, maxLMADs int, out string, csvOut bool, workers int, tf *cliutil.TraceFlags) error {
	if err := cliutil.CheckWorkers(workers); err != nil {
		return err
	}
	if workload != "" || tf.Active() {
		return runOne(workload, cfg, maxLMADs, out, workers, tf)
	}

	rows := experiments.Table1(cfg, maxLMADs)
	avg := experiments.Table1Average(rows)
	tbl := report.NewTable("Benchmark", "Accesses", "Compression", "Dilation", "Accesses captured", "Instrs captured")
	for _, r := range append(rows, avg) {
		tbl.AddRowf(r.Benchmark, r.Accesses, report.Ratio(r.Compression),
			fmt.Sprintf("%.1f", r.Dilation), report.Pct(r.AccPct), report.Pct(r.InstrPct))
	}
	if csvOut {
		return tbl.WriteCSV(os.Stdout)
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout
	fmt.Printf("\nTable 1 (paper averages: 3539x compression, 11.5x dilation, 46.5%% accesses, 40.5%% instructions)\n")
	return nil
}

func runOne(workload string, cfg workloads.Config, maxLMADs int, out string, workers int, tf *cliutil.TraceFlags) error {
	ev, err := tf.Load(workload, cfg)
	if err != nil {
		return err
	}

	if ev.Governed() {
		return runOneGoverned(ev, maxLMADs, out, uint64(cfg.Seed))
	}

	var deg cliutil.Degraded
	lp := leap.NewParallel(ev.Sites, maxLMADs, workers)
	_, perr := ev.Pass(lp)
	if err := deg.Check(perr); err != nil {
		return err
	}
	profile := lp.Profile(ev.Name)

	accPct, instrPct := profile.SampleQuality()
	fmt.Printf("workload %s: %d accesses, %d streams, %d LMADs\n",
		ev.Name, profile.Records, len(profile.Streams), profile.TotalLMADs())
	fmt.Printf("  profile: %d bytes (compression %.0fx)\n", profile.EncodedSize(), profile.CompressionRatio())
	fmt.Printf("  sample quality: %.1f%% of accesses, %.1f%% of instructions\n", accPct, instrPct)

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := profile.WriteTo(f); err != nil {
			return err
		}
		fmt.Printf("  wrote profile to %s\n", out)
	}
	return deg.Err()
}

// runOneGoverned is runOne under a memory budget: the sequential LEAP
// profiler runs behind a degradation ladder. A sampled profile still
// renders and writes; below that only the governance report remains, and
// the degradation exits 2 through the usual salvage path.
func runOneGoverned(ev *cliutil.Events, maxLMADs int, out string, seed uint64) error {
	var deg cliutil.Degraded
	lad, _, perr := ev.GovernedPass(seed, func() govern.Mode { return leap.New(ev.Sites, maxLMADs) })
	if err := deg.Check(perr); err != nil {
		return err
	}

	if lp, ok := lad.FullMode().(*leap.Profiler); ok {
		profile := lp.Profile(ev.Name)
		accPct, instrPct := profile.SampleQuality()
		fmt.Printf("workload %s: %d accesses, %d streams, %d LMADs\n",
			ev.Name, profile.Records, len(profile.Streams), profile.TotalLMADs())
		fmt.Printf("  profile: %d bytes (compression %.0fx)\n", profile.EncodedSize(), profile.CompressionRatio())
		fmt.Printf("  sample quality: %.1f%% of accesses, %.1f%% of instructions\n", accPct, instrPct)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			if _, err := profile.WriteTo(f); err != nil {
				return err
			}
			fmt.Printf("  wrote profile to %s\n", out)
		}
	} else {
		fmt.Printf("workload %s: LEAP profile unavailable (degraded to %s)\n", ev.Name, lad.Rung())
	}
	if err := cliutil.WriteGovernance(os.Stdout, lad); err != nil {
		return err
	}
	if err := deg.Check(lad.Err()); err != nil {
		return err
	}
	return deg.Err()
}
