package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/locality"
	"ormprof/internal/report"
)

// localityCmd quantifies a workload's data reference locality (Chilimbi's
// measurement, related work [10]) at two granularities: hardware cache
// lines over raw addresses, and objects over the object-relative stream.
// The line histogram's miss-ratio curve predicts fully associative LRU
// cache behaviour exactly.
func localityCmd(args []string) error {
	fs := flag.NewFlagSet("locality", flag.ExitOnError)
	w, scale, seed, _, tf := workloadFlags(fs)
	line := fs.Uint("line", 64, "cache line size in bytes")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	ev, err := load(*w, *scale, *seed, tf)
	if err != nil {
		return err
	}
	var deg cliutil.Degraded
	ls := locality.NewLineSink(*line)
	_, perr := ev.Pass(ls)
	if err := deg.Check(perr); err != nil {
		return err
	}
	lineHist := ls.Histogram()
	recs, _, err := ev.Translate()
	if err := deg.Check(err); err != nil {
		return err
	}
	objHist := locality.ObjectHistogram(recs)

	fmt.Printf("workload %s: reuse-distance analysis (%d line touches, %d object touches)\n\n",
		ev.Name, lineHist.Total, objHist.Total)
	tbl := report.NewTable("LRU capacity", "Line miss ratio", "Object miss ratio")
	for _, c := range []uint64{8, 32, 128, 512, 2048, 8192} {
		tbl.AddRowf(c, report.Pct(100*lineHist.MissRatio(c)), report.Pct(100*objHist.MissRatio(c)))
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout
	fmt.Println("\nline rows predict a fully associative LRU cache of that many lines")
	fmt.Println("exactly; object rows measure locality of the object-relative stream,")
	fmt.Println("independent of allocator placement.")
	return deg.Err()
}
