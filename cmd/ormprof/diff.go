package main

import (
	"fmt"
	"os"
	"sort"

	"ormprof/internal/leap"
	"ormprof/internal/report"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
)

// diffCmd compares two LEAP profiles of the same program — typically from
// different runs, inputs, or builds. The comparison is only possible
// because object-relative profiles key streams by (static instruction,
// allocation site), which survives any allocator layout (§1): raw-address
// profiles from two runs have nothing stable to join on.
func diffCmd(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("diff takes exactly two .leap profile files")
	}
	a, err := readLEAP(args[0])
	if err != nil {
		return err
	}
	b, err := readLEAP(args[1])
	if err != nil {
		return err
	}

	fmt.Printf("A: %s (%q, %d accesses, %d streams)\n", args[0], a.Workload, a.Records, len(a.Streams))
	fmt.Printf("B: %s (%q, %d accesses, %d streams)\n\n", args[1], b.Workload, b.Records, len(b.Streams))

	// Instruction-level comparison: execution counts and stride changes.
	ids := make(map[trace.InstrID]bool)
	for id := range a.InstrExecs {
		ids[id] = true
	}
	for id := range b.InstrExecs {
		ids[id] = true
	}
	sorted := make([]trace.InstrID, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	strideA := stride.FromLEAP(a)
	strideB := stride.FromLEAP(b)

	tbl := report.NewTable("Instr", "Execs A", "Execs B", "Δ%", "Stride A", "Stride B", "Note")
	shown, changed := 0, 0
	for _, id := range sorted {
		ea, eb := a.InstrExecs[id], b.InstrExecs[id]
		note := ""
		switch {
		case ea == 0:
			note = "NEW in B"
		case eb == 0:
			note = "GONE in B"
		}
		sa, hasA := strideA[id]
		sb, hasB := strideB[id]
		if hasA && hasB && sa.Stride != sb.Stride {
			note = "STRIDE CHANGED"
		}
		deltaPct := 0.0
		if ea > 0 {
			deltaPct = 100 * (float64(eb) - float64(ea)) / float64(ea)
		}
		interesting := note != "" || deltaPct > 50 || deltaPct < -33
		if !interesting {
			continue
		}
		changed++
		if shown < 20 {
			tbl.AddRowf(fmt.Sprintf("i%d", id), ea, eb, fmt.Sprintf("%+.0f", deltaPct),
				strideOf(sa, hasA), strideOf(sb, hasB), note)
			shown++
		}
	}
	if changed == 0 {
		fmt.Println("no significant per-instruction differences")
	} else {
		tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout
		if changed > shown {
			fmt.Printf("… %d more changed instructions\n", changed-shown)
		}
	}

	accA, _ := a.SampleQuality()
	accB, _ := b.SampleQuality()
	fmt.Printf("\nsample quality: A %.1f%%, B %.1f%%\n", accA, accB)
	return nil
}

func strideOf(i stride.Info, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%+d", i.Stride)
}

func readLEAP(path string) (*leap.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return leap.ReadProfile(f)
}
