package main

import (
	"flag"
	"fmt"
	"sort"

	"ormprof/internal/cliutil"
	"ormprof/internal/decomp"
	"ormprof/internal/govern"
	"ormprof/internal/hotstream"
	"ormprof/internal/whomp"
)

// grammarCmd makes the OMSG tangible: collect a WHOMP profile and print one
// dimension's Sequitur grammar — its hottest rules with their expansions —
// the way §3.2 reads patterns like (0, 36)* out of the offset grammar.
func grammarCmd(args []string) error {
	fs := flag.NewFlagSet("grammar", flag.ExitOnError)
	w, scale, seed, n, tf := workloadFlags(fs)
	dimName := fs.String("dim", "offset", "dimension: instr, group, object, or offset")
	workers := cliutil.WorkersFlag(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if err := cliutil.CheckWorkers(*workers); err != nil {
		return err
	}

	var dim decomp.Dimension
	switch *dimName {
	case "instr":
		dim = decomp.DimInstr
	case "group":
		dim = decomp.DimGroup
	case "object":
		dim = decomp.DimObject
	case "offset":
		dim = decomp.DimOffset
	default:
		return fmt.Errorf("unknown dimension %q", *dimName)
	}

	ev, err := load(*w, *scale, *seed, tf)
	if err != nil {
		return err
	}
	var deg cliutil.Degraded
	var profile *whomp.Profile
	var lad *govern.Ladder
	if ev.Governed() {
		var perr error
		lad, _, perr = ev.GovernedPass(uint64(*seed), func() govern.Mode { return whomp.New(ev.Sites) })
		if err := deg.Check(perr); err != nil {
			return err
		}
		wp, ok := lad.FullMode().(*whomp.Profiler)
		if !ok {
			fmt.Printf("workload %s: grammar unavailable (degraded to %s)\n", ev.Name, lad.Rung())
			return finishGoverned(&deg, lad)
		}
		profile = wp.Profile(ev.Name)
	} else {
		wp := whomp.NewParallel(ev.Sites, *workers)
		_, perr := ev.Pass(wp)
		if err := deg.Check(perr); err != nil {
			return err
		}
		profile = wp.Profile(ev.Name)
	}
	g := profile.Grammars[dim]

	fmt.Printf("workload %s, %s-dimension grammar: %d rules, %d symbols for %d accesses (%.1fx)\n\n",
		ev.Name, dim, g.NumRules(), g.Symbols(), profile.Records, float64(profile.Records)/float64(g.Symbols()))

	streams := hotstream.Extract(g, hotstream.Options{
		MinLength:  2,
		MinFreq:    2,
		MaxStreams: *n,
		KeepNested: true,
	})
	sort.Slice(streams, func(i, j int) bool { return streams[i].Heat > streams[j].Heat })
	fmt.Println("hottest rules (repeated subsequences):")
	for i, s := range streams {
		preview := s.Symbols
		ellipsis := ""
		if len(preview) > 16 {
			preview = preview[:16]
			ellipsis = " …"
		}
		fmt.Printf("  R%-4d ×%-6d len %-6d %v%s\n", s.RuleID, s.Freq, len(s.Symbols), preview, ellipsis)
		if i+1 == *n {
			break
		}
	}
	if len(streams) == 0 {
		fmt.Println("  (no repeated subsequences — the stream is unique throughout)")
	}
	return finishGoverned(&deg, lad)
}
