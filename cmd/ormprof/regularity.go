package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ormprof/internal/cliutil"
	"ormprof/internal/leap"
	"ormprof/internal/report"
)

// regularityCmd renders the paper's Figure 2 concept on a real workload:
// after object-relative translation and vertical decomposition, each
// (instruction, group) sub-stream is either regular (captured by a handful
// of linear descriptors) or irregular (overflows the budget) — the
// separation that makes the profile useful.
func regularityCmd(args []string) error {
	fs := flag.NewFlagSet("regularity", flag.ExitOnError)
	w, scale, seed, n, tf := workloadFlags(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	ev, err := load(*w, *scale, *seed, tf)
	if err != nil {
		return err
	}
	var deg cliutil.Degraded
	lp := leap.NewParallel(ev.Sites, 0, 0)
	_, perr := ev.Pass(lp)
	if err := deg.Check(perr); err != nil {
		return err
	}
	profile := lp.Profile(ev.Name)

	type row struct {
		key     leap.StreamKey
		quality float64
		offered uint64
		lmads   int
	}
	rows := make([]row, 0, len(profile.Streams))
	var regular, irregular uint64
	for _, k := range profile.Keys() {
		s := profile.Streams[k]
		q := 0.0
		if s.Offered > 0 {
			q = float64(s.OffsetCaptured) / float64(s.Offered)
		}
		rows = append(rows, row{key: k, quality: q, offered: s.Offered, lmads: len(s.OffsetLMADs)})
		if q >= 0.9 {
			regular += s.Offered
		} else if q < 0.5 {
			irregular += s.Offered
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].offered > rows[j].offered })

	fmt.Printf("workload %s: %d accesses in %d vertically decomposed sub-streams\n\n",
		ev.Name, profile.Records, len(rows))
	tbl := report.NewTable("Instr", "Group", "Accesses", "Descriptors", "Captured", "Verdict")
	shown := 0
	for _, r := range rows {
		if shown == *n {
			break
		}
		verdict := "mixed"
		switch {
		case r.quality >= 0.9:
			verdict = "REGULAR"
		case r.quality < 0.5:
			verdict = "irregular"
		}
		tbl.AddRowf(fmt.Sprintf("i%d", r.key.Instr), lp.OMC().GroupName(r.key.Group),
			r.offered, r.lmads, report.Pct(100*r.quality), verdict)
		shown++
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout
	fmt.Printf("\nseparation (Figure 2): %.0f%% of accesses in regular sub-streams, %.0f%% irregular\n",
		100*float64(regular)/float64(profile.Records),
		100*float64(irregular)/float64(profile.Records))
	return deg.Err()
}
