package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/prefetch"
	"ormprof/internal/workloads"
)

// optimizeCmd closes the PGO loop (ROADMAP item 3): profile the workload,
// derive a placement/field-ordering/prefetch plan, serialize it as an
// ORMPLAN artifact, apply it (live re-run under the plan-driven allocator,
// or replay resolution for -replay), and report before/after miss rates per
// hierarchy level. Output is byte-identical for any -workers count.
func optimizeCmd(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	w, scale, seed, _, tf := workloadFlags(fs)
	planOut := fs.String("plan", "", `output ORMPLAN path (default <workload>.ormplan; "none" to skip)`)
	lookahead := fs.Int64("lookahead", prefetch.DefaultLookahead, "prefetch lookahead distance in strides")
	csvOut := fs.Bool("csv", false, "emit the before/after delta table as CSV instead of the text report")
	workers := cliutil.WorkersFlag(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	ev, err := tf.Load(*w, workloads.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	path := *planOut
	if path == "" {
		path = ev.Name + ".ormplan"
	}
	if path == "none" {
		path = ""
	}

	var deg cliutil.Degraded
	res, err := ev.Optimize(cliutil.OptimizeConfig{
		Workers:   *workers,
		Seed:      uint64(*seed),
		Lookahead: *lookahead,
		PlanPath:  path,
	})
	if err := deg.Check(err); err != nil {
		return err
	}
	if *csvOut && res.Plan != nil {
		if err := res.DeltaTable().WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else {
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if len(res.Ladders) > 0 {
		fmt.Println()
		if err := cliutil.WriteGovernance(os.Stdout, res.Ladders...); err != nil {
			return err
		}
	}
	for _, lad := range res.Ladders {
		if err := deg.Check(lad.Err()); err != nil {
			return err
		}
	}
	return deg.Err()
}
