// Command ormprof is the umbrella inspection tool for the object-relative
// memory profiling toolkit: dump raw probe traces, dump object-relative
// translations, list groups, and inspect saved profile and trace files.
//
// Usage:
//
//	ormprof record    -workload NAME [-o FILE] [-scale S] [-seed S]
//	ormprof trace     -workload NAME [-n N] [-scale S] [-seed S]
//	ormprof translate -workload NAME [-n N] [-scale S] [-seed S]
//	ormprof groups    -workload NAME [-scale S] [-seed S]
//	ormprof inspect   FILE.whomp|FILE.leap|FILE.ormtrace
//	ormprof optimize  -workload NAME [-plan FILE.ormplan] [-workers N] [-csv]
//
// Every workload-driven subcommand also accepts -replay FILE.ormtrace to
// read a recorded trace instead of running the workload, and -record FILE
// to tee the live probe stream to a trace file.
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/govern"
	"ormprof/internal/leap"
	"ormprof/internal/memsim"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/report"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "record":
		err = recordCmd(args)
	case "trace":
		err = traceCmd(args)
	case "translate":
		err = translateCmd(args)
	case "groups":
		err = groupsCmd(args)
	case "regularity":
		err = regularityCmd(args)
	case "locality":
		err = localityCmd(args)
	case "grammar":
		err = grammarCmd(args)
	case "inspect":
		err = inspectCmd(args)
	case "diff":
		err = diffCmd(args)
	case "regen":
		err = regenCmd(args)
	case "optimize":
		err = optimizeCmd(args)
	default:
		usage()
	}
	if err != nil {
		cliutil.Fatal("ormprof", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ormprof <command> [flags]

commands:
  record     run a workload and stream its probe trace to a file
  trace      dump the raw probe event stream of a workload
  translate  dump the object-relative 5-tuple stream of a workload
  groups     list the groups and objects a workload allocates
  regularity show the regular/irregular sub-stream separation (Figure 2)
  locality   reuse-distance analysis at line and object granularity
  grammar    print a dimension's OMSG grammar rules (hot repeated patterns)
  inspect    summarize a saved .whomp/.leap profile or .ormtrace trace file
  diff       compare two .leap profiles of the same program across runs
  regen      regenerate the raw access trace from a .whomp profile (losslessness)
  optimize   close the loop: derive an ORMPLAN layout plan, apply it, measure the miss-rate delta`)
	os.Exit(2)
}

// workloadFlags registers the flags every workload-driven subcommand
// shares, including the -record/-replay trace pair.
func workloadFlags(fs *flag.FlagSet) (*string, *int, *int64, *int, *cliutil.TraceFlags) {
	w := fs.String("workload", "linkedlist", "workload name")
	scale := fs.Int("scale", 1, "workload scale factor")
	seed := fs.Int64("seed", 42, "workload random seed")
	n := fs.Int("n", 20, "number of entries to print")
	tf := cliutil.RegisterTraceFlags(fs)
	return w, scale, seed, n, tf
}

// load resolves the workload selection and trace flags into an event
// stream: a live run (teeing to -record if set) or a replayed trace.
func load(name string, scale int, seed int64, tf *cliutil.TraceFlags) (*cliutil.Events, error) {
	return tf.Load(name, workloads.Config{Scale: scale, Seed: seed})
}

func recordCmd(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	w, scale, seed, _, _ := workloadFlags(fs)
	out := fs.String("o", "trace.ormtrace", "output trace file")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	prog, err := workloads.New(*w, workloads.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	// Streamed straight from the probes: the writer batches events into
	// frames, so recording never materializes the trace.
	tw := tracefmt.NewWriter(f, tracefmt.WithName(*w))
	m := memsim.Run(prog, tw)
	if err := tw.Close(); err != nil {
		return err
	}
	loads, stores, allocs, frees := m.Counters()
	fmt.Printf("recorded %s: %d loads, %d stores, %d allocs, %d frees -> %s (%d bytes)\n",
		*w, loads, stores, allocs, frees, *out, tw.BytesWritten())
	return nil
}

func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	w, scale, seed, n, tf := workloadFlags(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	ev, err := load(*w, *scale, *seed, tf)
	if err != nil {
		return err
	}
	var deg cliutil.Degraded
	shown := 0
	total, perr := ev.Pass(trace.SinkFunc(func(e trace.Event) {
		if shown < *n {
			fmt.Println(e)
		}
		shown++
	}))
	if err := deg.Check(perr); err != nil {
		return err
	}
	if total > *n {
		fmt.Printf("… %d more events\n", total-*n)
	}
	return deg.Err()
}

func translateCmd(args []string) error {
	fs := flag.NewFlagSet("translate", flag.ExitOnError)
	w, scale, seed, n, tf := workloadFlags(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	ev, err := load(*w, *scale, *seed, tf)
	if err != nil {
		return err
	}
	var deg cliutil.Degraded
	lad, recs, o, err := translate(ev, uint64(*seed))
	if err := deg.Check(err); err != nil {
		return err
	}
	if lad != nil && o == nil {
		fmt.Printf("translation unavailable (degraded to %s)\n", lad.Rung())
		return finishGoverned(&deg, lad)
	}
	for i, r := range recs {
		if i == *n {
			fmt.Printf("… %d more records\n", len(recs)-*n)
			break
		}
		fmt.Printf("%v  group=%s\n", r, o.GroupName(r.Ref.Group))
	}
	translated, unmapped := o.Stats()
	fmt.Printf("translated %d accesses (%d unmapped)\n", translated+unmapped, unmapped)
	return finishGoverned(&deg, lad)
}

// translate dispatches between the plain and budget-governed translation
// paths. Under -mem-budget a nil OMC means the ladder dropped below the
// sampled rung and only the governance report remains.
func translate(ev *cliutil.Events, seed uint64) (*govern.Ladder, []profiler.Record, *omc.OMC, error) {
	if ev.Governed() {
		return ev.TranslateGoverned(seed)
	}
	recs, o, err := ev.Translate()
	return nil, recs, o, err
}

// finishGoverned renders the governance report (if any) and folds the
// ladder's degradation into the accumulated salvage state.
func finishGoverned(deg *cliutil.Degraded, lad *govern.Ladder) error {
	if lad != nil {
		if err := cliutil.WriteGovernance(os.Stdout, lad); err != nil {
			return err
		}
		if err := deg.Check(lad.Err()); err != nil {
			return err
		}
	}
	return deg.Err()
}

func groupsCmd(args []string) error {
	fs := flag.NewFlagSet("groups", flag.ExitOnError)
	w, scale, seed, _, tf := workloadFlags(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	ev, err := load(*w, *scale, *seed, tf)
	if err != nil {
		return err
	}
	var deg cliutil.Degraded
	lad, _, o, err := translate(ev, uint64(*seed))
	if err := deg.Check(err); err != nil {
		return err
	}
	if lad != nil && o == nil {
		fmt.Printf("group table unavailable (degraded to %s)\n", lad.Rung())
		return finishGoverned(&deg, lad)
	}
	tbl := report.NewTable("Group", "Name", "Site", "Objects", "First object", "Sizes")
	for _, g := range o.Groups() {
		objs := o.Objects(g.ID)
		sizes := "-"
		first := "-"
		if len(objs) > 0 {
			first = fmt.Sprintf("%#x", uint64(objs[0].Start))
			minS, maxS := objs[0].Size, objs[0].Size
			for _, ob := range objs {
				if ob.Size < minS {
					minS = ob.Size
				}
				if ob.Size > maxS {
					maxS = ob.Size
				}
			}
			if minS == maxS {
				sizes = fmt.Sprintf("%d B", minS)
			} else {
				sizes = fmt.Sprintf("%d-%d B", minS, maxS)
			}
		}
		tbl.AddRowf(g.ID, g.Name, g.Site, g.Count, first, sizes)
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout
	return finishGoverned(&deg, lad)
}

func inspectCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect takes exactly one profile or trace file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()

	// Try WHOMP, then LEAP, then a raw trace (each checks its own magic).
	if p, err := whomp.ReadProfile(f); err == nil {
		fmt.Printf("WHOMP profile: workload %q, %d accesses\n", p.Workload, p.Records)
		fmt.Printf("  grammars: %d symbols, %d encoded bytes\n", p.Symbols(), p.EncodedBytes())
		fmt.Printf("  object table: %d groups, %d objects\n", len(p.Objects.Groups), p.Objects.NumObjects())
		return nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	if p, err := leap.ReadProfile(f); err == nil {
		accPct, instrPct := p.SampleQuality()
		fmt.Printf("LEAP profile: workload %q, %d accesses\n", p.Workload, p.Records)
		fmt.Printf("  %d streams, %d timed LMADs, %d encoded bytes (%.0fx compression)\n",
			len(p.Streams), p.TotalLMADs(), p.EncodedSize(), p.CompressionRatio())
		fmt.Printf("  sample quality: %.1f%% accesses, %.1f%% instructions\n", accPct, instrPct)
		return nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	r, err := tracefmt.NewReader(f)
	if err != nil {
		return fmt.Errorf("not a WHOMP profile, LEAP profile, or ORMTRACE trace: %v", err)
	}
	sb := &trace.StatsBuilder{}
	if _, err := trace.Drain(r, sb); err != nil {
		return err
	}
	s := sb.Stats()
	fmt.Printf("ORMTRACE v%d trace: workload %q\n", r.Version(), r.Name())
	fmt.Printf("  %d events: %d loads, %d stores, %d allocs, %d frees\n",
		s.Loads+s.Stores+s.Allocs+s.Frees, s.Loads, s.Stores, s.Allocs, s.Frees)
	fmt.Printf("  %d named allocation sites, %d instructions\n", len(r.Sites()), s.Instrs)
	return nil
}
