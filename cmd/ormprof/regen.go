package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/whomp"
)

// regenCmd regenerates the raw (instruction, address) access trace from a
// WHOMP profile — the operational proof of §3's losslessness: the OMSG plus
// the object table carry everything the original trace did.
func regenCmd(args []string) error {
	fs := flag.NewFlagSet("regen", flag.ExitOnError)
	out := fs.String("o", "", "write the regenerated accesses as a .ormtrace file (else print a summary)")
	n := fs.Int("n", 8, "accesses to preview")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		return fmt.Errorf("regen takes exactly one .whomp profile file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	p, err := whomp.ReadProfile(f)
	if err != nil {
		return err
	}
	instrs, addrs, err := p.ReconstructAccesses()
	if err != nil {
		return err
	}
	fmt.Printf("regenerated %d accesses from %q\n", len(instrs), p.Workload)
	for i := 0; i < len(instrs) && i < *n; i++ {
		fmt.Printf("  t%-6d i%-5d %#x\n", i, instrs[i], uint64(addrs[i]))
	}
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		tw := tracefmt.NewWriter(of, tracefmt.WithName(p.Workload))
		for i := range instrs {
			// Access kinds and sizes are not part of the 5-tuple; the
			// regenerated trace records loads of unknown width.
			tw.Emit(trace.Event{
				Kind:  trace.EvAccess,
				Time:  trace.Time(i),
				Instr: instrs[i],
				Addr:  addrs[i],
				Size:  1,
			})
		}
		if err := tw.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, tw.BytesWritten())
	}
	return nil
}
