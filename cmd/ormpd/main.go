// Command ormpd is the networked trace-ingestion daemon: it accepts
// ORMTRACE-v3 frames over TCP (the ORMP/1 protocol, see docs/FORMATS.md),
// feeds them through the streaming WHOMP/LEAP/stride pipelines, and
// writes the finished profiles to the output directory. Sessions are
// periodically checkpointed to disk; after a crash, restarting with
// -resume lets clients continue from the last durable frame with no
// profile difference versus an uninterrupted run.
//
// Usage:
//
//	ormpd -listen 127.0.0.1:7417 -checkpoints ck/ -out profiles/ [-resume]
//
// SIGINT/SIGTERM trigger a graceful shutdown: live sessions drain until
// -drain-timeout, then everything is checkpointed and partial profiles
// are flushed. Exit codes: 0 clean, 2 if the drain deadline cut sessions
// short (their state is still durable), 1 on hard errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ormprof/internal/cliutil"
	"ormprof/internal/serve"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7417", "TCP address to listen on")
		ckDir      = flag.String("checkpoints", "ormpd-checkpoints", "directory for session checkpoints")
		outDir     = flag.String("out", "ormpd-profiles", "directory for finished profiles")
		resume     = flag.Bool("resume", false, "load existing checkpoints so interrupted sessions continue where they left off")
		maxSess    = flag.Int("max-sessions", 16, "maximum concurrently connected sessions (excess connections are told to retry)")
		maxQueued  = flag.Int64("max-queued-bytes", 64<<20, "maximum queued-but-unapplied frame bytes across all sessions before new connections are told to retry")
		ckEvery    = flag.Int("checkpoint-every", 32, "checkpoint (and acknowledge) after this many frames")
		ckInterval = flag.Duration("checkpoint-interval", time.Second, "also checkpoint this long after the first unacknowledged frame")
		idle       = flag.Duration("idle-timeout", 30*time.Second, "disconnect (and checkpoint) a session after this long without a message")
		retryAfter = flag.Duration("retry-after", 500*time.Millisecond, "retry-after hint sent with admission rejections")
		maxLMADs   = flag.Int("max-lmads", 0, "LEAP descriptor budget per stream (0 = paper default)")
		drain      = flag.Duration("drain-timeout", 10*time.Second, "how long a graceful shutdown waits for live sessions to finish")
		quiet      = flag.Bool("quiet", false, "suppress per-session log lines")
	)
	memBudget := cliutil.SizeFlag(flag.CommandLine, "mem-budget",
		"per-session memory budget (e.g. 64M); over budget the session's pipeline degrades (0 = unlimited)")
	globalBudget := cliutil.SizeFlag(flag.CommandLine, "global-mem-budget",
		"memory budget (e.g. 512M) across all sessions; over its watermark new sessions are told to retry and the heaviest session is stepped down (0 = unlimited)")
	flag.Parse()
	cliutil.Fatal("ormpd", run(*listen, serve.Config{
		CheckpointDir:      *ckDir,
		OutputDir:          *outDir,
		Resume:             *resume,
		MaxSessions:        *maxSess,
		MaxQueuedBytes:     *maxQueued,
		CheckpointEvery:    *ckEvery,
		CheckpointInterval: *ckInterval,
		IdleTimeout:        *idle,
		RetryAfter:         *retryAfter,
		MaxLMADs:           *maxLMADs,
		SessionMemBudget:   *memBudget,
		GlobalMemBudget:    *globalBudget,
	}, *drain, *quiet))
}

func run(listen string, cfg serve.Config, drain time.Duration, quiet bool) error {
	if !quiet {
		logger := log.New(os.Stderr, "ormpd: ", log.LstdFlags)
		cfg.Logf = logger.Printf
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv, err := serve.New(ln, cfg)
	if err != nil {
		ln.Close()
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ormpd: listening on %s\n", srv.Addr())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = srv.Shutdown(ctx)
	<-serveErr
	return err // nil, or DeadlineExceeded (degraded: sessions cut short but durable)
}
