// Command ormpd is the networked trace-ingestion daemon: it accepts
// ORMTRACE-v3 frames over TCP (the ORMP/1 protocol, see docs/FORMATS.md),
// feeds them through the streaming WHOMP/LEAP/stride pipelines, and
// writes the finished profiles to the output directory. Sessions are
// periodically checkpointed to disk; after a crash, restarting with
// -resume lets clients continue from the last durable frame with no
// profile difference versus an uninterrupted run.
//
// Usage:
//
//	ormpd -listen 127.0.0.1:7417 -checkpoints ck/ -out profiles/ [-resume]
//
// Cluster modes (see docs/ARCHITECTURE.md, "Cluster"):
//
//	ormpd -cluster -shards 10.0.0.1:7417,10.0.0.2:7417   router tier:
//	    consistent-hash sessions across the shard list, fail over to ring
//	    successors when a shard dies, persist reroutes to -routes; the
//	    shards are plain single-node daemons started with -final so they
//	    write the merge plane's inputs
//	ormpd -cluster -local-shards 4                       all-in-one:
//	    N in-process shards plus a router on -listen; on shutdown the
//	    shards' results are merged into the cluster report under -out
//	ormpd -merge shard0/final,shard1/final -out report/  merge plane:
//	    combine shards' final session states into one cluster report
//
// Live reconfiguration (see docs/ARCHITECTURE.md, "Live reconfiguration"):
// cluster modes take -admin to expose the ORMA/1 admin plane, and
//
//	ormpd -ctl status       -admin 127.0.0.1:7418          prints the ring
//	    epoch, shard list, and pinned placements
//	ormpd -ctl add-shard    -admin ... -shard 10.0.0.3:7417 [-epoch N]
//	ormpd -ctl remove-shard -admin ... -shard 10.0.0.2:7417 [-epoch N]
//	    change the ring without draining; sessions whose primary moves are
//	    migrated live. -epoch 0 (default) reads the current epoch first;
//	    a stale epoch is refused, which is what makes retries safe.
//
// Router replication: -routers N runs N-1 standby routers next to the
// active one (-local-shards), or -standby -active <addr> -peers <admins>
// starts a standalone router as a replicating standby.
//
// SIGINT/SIGTERM trigger a graceful shutdown: live sessions drain until
// -drain-timeout, then everything is checkpointed and partial profiles
// are flushed. Exit codes: 0 clean, 2 if the drain deadline cut sessions
// short (their state is still durable) or a merge skipped unusable final
// states, 1 on hard errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ormprof/internal/cliutil"
	"ormprof/internal/serve"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7417", "TCP address to listen on")
		ckDir      = flag.String("checkpoints", "ormpd-checkpoints", "directory for session checkpoints (single-node) or the cluster root (-local-shards)")
		outDir     = flag.String("out", "ormpd-profiles", "directory for finished profiles (and the cluster report in -local-shards and -merge modes)")
		resume     = flag.Bool("resume", false, "load existing checkpoints so interrupted sessions continue where they left off")
		maxSess    = flag.Int("max-sessions", 16, "maximum concurrently connected sessions (excess connections are told to retry)")
		maxQueued  = flag.Int64("max-queued-bytes", 64<<20, "maximum queued-but-unapplied frame bytes across all sessions before new connections are told to retry")
		ckEvery    = flag.Int("checkpoint-every", 32, "checkpoint (and acknowledge) after this many frames")
		ckInterval = flag.Duration("checkpoint-interval", time.Second, "also checkpoint this long after the first unacknowledged frame")
		idle       = flag.Duration("idle-timeout", 30*time.Second, "disconnect (and checkpoint) a session after this long without a message")
		retryAfter = flag.Duration("retry-after", serve.DefaultRetryAfter, "retry-after hint sent with admission rejections (the router propagates each shard's own hint and uses this only when a shard never supplied one)")
		maxLMADs   = flag.Int("max-lmads", 0, "LEAP descriptor budget per stream (0 = paper default)")
		finalDir   = flag.String("final", "", "directory for completed sessions' final pipeline states — the -merge inputs; set it on shards feeding a remote router (empty = don't write them; -local-shards manages this per shard)")
		drain      = flag.Duration("drain-timeout", 10*time.Second, "how long a graceful shutdown waits for live sessions to finish")
		quiet      = flag.Bool("quiet", false, "suppress per-session log lines")
		approx     = flag.Bool("approx", false, "profile every new session with fixed-memory sketches (the sketch-stride rung) instead of exact pipelines; resumed sessions keep their checkpointed mode, and the merge plane folds sketch sessions into cluster.approx")

		cluster = flag.Bool("cluster", false, "cluster mode: route to -shards, or run -local-shards in-process shards")
		routes  = flag.String("routes", "ormpd-router.rtab", "router mode: durable state-table path (ring epoch, shard list, and reroutes survive router restarts)")

		admin   = flag.String("admin", "", "cluster modes: ORMA/1 admin listen address for -ctl commands and router replication (empty = no admin plane)")
		ctl     = flag.String("ctl", "", "admin client mode: status, add-shard, or remove-shard, sent to the router at -admin")
		ctlAddr = flag.String("shard", "", "-ctl add-shard/remove-shard: the shard address to add or remove (a -local-shards cluster spawns its own, addressed as the literal \"local\")")
		epoch   = flag.Uint64("epoch", 0, "-ctl add-shard/remove-shard: the ring epoch the command is built against; 0 = read the current epoch first (a stale epoch is refused, exit 1)")
		standby = flag.Bool("standby", false, "router mode: start as a standby — refuse ingest with a redirect to -active while receiving replicated state on -admin")
		active  = flag.String("active", "", "standby router: the active router's ingest address, sent to refused clients as a redirect hint")
	)
	shards := cliutil.ListFlag(flag.CommandLine, "shards",
		"router mode (with -cluster): comma-separated backend shard addresses; sessions are consistent-hashed across them")
	localShards := cliutil.CountFlag(flag.CommandLine, "local-shards", 0, 1,
		"all-in-one mode (with -cluster): run this many in-process shards behind a router on -listen")
	mergeDirs := cliutil.ListFlag(flag.CommandLine, "merge",
		"merge mode: comma-separated shard final-state directories to combine into the cluster report under -out")
	peers := cliutil.ListFlag(flag.CommandLine, "peers",
		"router mode: comma-separated admin addresses of peer routers; state replicates to them after every durable change")
	routers := cliutil.CountFlag(flag.CommandLine, "routers", 1, 1,
		"all-in-one mode (with -local-shards): total router count — one active plus this many minus one standbys")
	memBudget := cliutil.SizeFlag(flag.CommandLine, "mem-budget",
		"per-session memory budget (e.g. 64M); over budget the session's pipeline degrades (0 = unlimited)")
	globalBudget := cliutil.SizeFlag(flag.CommandLine, "global-mem-budget",
		"memory budget (e.g. 512M) across all sessions of one shard; over its watermark new sessions are told to retry and the heaviest session is stepped down (0 = unlimited)")
	clusterBudget := cliutil.SizeFlag(flag.CommandLine, "cluster-mem-budget",
		"memory budget (e.g. 2G) summed across all local shards; over its watermark the heaviest shard sheds first (0 = unlimited)")
	flag.Parse()

	switch {
	case *cluster && len(*shards) > 0 && *localShards > 0:
		usageErr("-shards and -local-shards are mutually exclusive")
	case *cluster && *ctl == "":
		if len(*shards) == 0 && *localShards == 0 {
			usageErr("-cluster needs -shards (router mode) or -local-shards (all-in-one)")
		}
	case !*cluster && *ctl == "" && (len(*shards) > 0 || *localShards > 0):
		usageErr("-shards and -local-shards require -cluster")
	}
	switch {
	case len(*mergeDirs) > 0 && *cluster:
		usageErr("-merge and -cluster are mutually exclusive")
	case *ctl != "" && (len(*mergeDirs) > 0 || *cluster):
		usageErr("-ctl is a client mode; it does not combine with -cluster or -merge")
	case *ctl != "" && *admin == "":
		usageErr("-ctl needs -admin: the router's admin address to send the command to")
	case *ctl == "status" && *ctlAddr != "":
		usageErr("-ctl status takes no -shard")
	case (*ctl == "add-shard" || *ctl == "remove-shard") && *ctlAddr == "":
		usageErr("-ctl %s needs -shard: the shard address to act on", *ctl)
	case *ctl != "" && *ctl != "status" && *ctl != "add-shard" && *ctl != "remove-shard":
		usageErr("unknown -ctl command %q (want status, add-shard, or remove-shard)", *ctl)
	case *standby && (!*cluster || len(*shards) == 0):
		usageErr("-standby applies to router mode (-cluster -shards)")
	case *standby && *active == "":
		usageErr("-standby needs -active: the active router's ingest address to redirect clients to")
	case *routers > 1 && *localShards == 0:
		usageErr("-routers requires -local-shards")
	case *approx && (len(*mergeDirs) > 0 || *ctl != ""):
		usageErr("-approx shapes ingest; it does not combine with -merge or -ctl (the merge plane folds whatever sketch sessions the shards wrote)")
	}

	cfg := serve.Config{
		CheckpointDir:      *ckDir,
		OutputDir:          *outDir,
		Resume:             *resume,
		MaxSessions:        *maxSess,
		MaxQueuedBytes:     *maxQueued,
		CheckpointEvery:    *ckEvery,
		CheckpointInterval: *ckInterval,
		IdleTimeout:        *idle,
		RetryAfter:         *retryAfter,
		MaxLMADs:           *maxLMADs,
		FinalDir:           *finalDir,
		SessionMemBudget:   *memBudget,
		GlobalMemBudget:    *globalBudget,
		Approx:             *approx,
	}
	switch {
	case *ctl != "":
		cliutil.Fatal("ormpd", runCtl(*ctl, *admin, *ctlAddr, *epoch))
	case len(*mergeDirs) > 0:
		cliutil.Fatal("ormpd", runMerge(*mergeDirs, *outDir, *maxLMADs, *quiet))
	case *cluster && len(*shards) > 0:
		rcfg := routerModeConfig{
			admin: *admin, standby: *standby, active: *active, peers: *peers,
		}
		cliutil.Fatal("ormpd", runRouter(*listen, *shards, *routes, rcfg, *retryAfter, *drain, *quiet))
	case *cluster:
		cliutil.Fatal("ormpd", runLocalCluster(*listen, *admin, *localShards, *routers, *ckDir, *outDir, cfg, *clusterBudget, *drain, *quiet))
	default:
		cliutil.Fatal("ormpd", run(*listen, cfg, *drain, *quiet))
	}
}

// usageErr reports a cross-flag conflict the flag package cannot catch in
// a single Set call, with the same contract as parse-time errors: message
// and usage on stderr, exit 2, nothing on stdout.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ormpd: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

func logfFor(quiet bool) func(string, ...any) {
	if quiet {
		return nil
	}
	return log.New(os.Stderr, "ormpd: ", log.LstdFlags).Printf
}

func run(listen string, cfg serve.Config, drain time.Duration, quiet bool) error {
	cfg.Logf = logfFor(quiet)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv, err := serve.New(ln, cfg)
	if err != nil {
		ln.Close()
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ormpd: listening on %s\n", srv.Addr())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = srv.Shutdown(ctx)
	<-serveErr
	return err // nil, or DeadlineExceeded (degraded: sessions cut short but durable)
}

// runCtl is the admin client: one ORMA/1 command against a running
// router's admin plane, result on stdout.
func runCtl(cmd, adminAddr, shard string, epoch uint64) error {
	switch cmd {
	case "status":
		st, err := serve.AdminFetchTable(adminAddr, 0)
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d\n", st.Epoch)
		fmt.Printf("shards %s\n", strings.Join(st.Shards, ","))
		fmt.Printf("placements %d\n", len(st.Routes))
		return nil
	case "add-shard", "remove-shard":
		if epoch == 0 {
			st, err := serve.AdminFetchTable(adminAddr, 0)
			if err != nil {
				return fmt.Errorf("reading current epoch: %w", err)
			}
			epoch = st.Epoch
		}
		newEpoch, err := serve.AdminShardCmd(adminAddr, cmd == "add-shard", epoch, shard, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%s %s: epoch %d -> %d\n", cmd, shard, epoch, newEpoch)
		return nil
	default:
		return fmt.Errorf("unknown -ctl command %q", cmd)
	}
}

// routerModeConfig carries the reconfiguration-era router flags.
type routerModeConfig struct {
	admin   string
	standby bool
	active  string
	peers   []string
}

// runRouter is the router tier: consistent-hash sessions across shards,
// forward ORMP/1 verbatim, fail over when a shard dies. With rcfg.admin
// set it also serves the ORMA/1 admin plane (topology commands on an
// active router, replication intake on a standby).
func runRouter(listen string, shards []string, routes string, rcfg routerModeConfig, retryAfter, drain time.Duration, quiet bool) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	r, err := serve.NewRouter(ln, serve.RouterConfig{
		Shards:     shards,
		StatePath:  routes,
		Standby:    rcfg.standby,
		ActiveAddr: rcfg.active,
		Peers:      rcfg.peers,
		RetryAfter: retryAfter,
		Logf:       logfFor(quiet),
	})
	if err != nil {
		ln.Close()
		return err
	}
	if !quiet {
		mode := "routing"
		if rcfg.standby {
			mode = "standing by for"
		}
		fmt.Fprintf(os.Stderr, "ormpd: %s %s across %d shard(s)\n", mode, r.Addr(), len(shards))
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve() }()
	if rcfg.admin != "" {
		aln, err := net.Listen("tcp", rcfg.admin)
		if err != nil {
			r.Kill()
			<-serveErr
			return err
		}
		go func() {
			if err := r.ServeAdmin(aln); err != nil && !quiet {
				fmt.Fprintf(os.Stderr, "ormpd: admin: %v\n", err)
			}
		}()
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = r.Shutdown(ctx)
	<-serveErr
	return err
}

// runLocalCluster is the all-in-one deployment: n shards plus a router
// tier in this process, with the cluster report merged into outDir on
// shutdown. The admin plane (always on; adminListen empty picks an
// ephemeral port, printed at startup) accepts add-shard/remove-shard and
// migrates sessions live.
func runLocalCluster(listen, adminListen string, n, nRouters int, dir, outDir string, shard serve.Config, clusterBudget int64, drain time.Duration, quiet bool) error {
	c, err := serve.NewCluster(serve.ClusterConfig{
		Dir:              dir,
		Shards:           n,
		Shard:            shard,
		RouterListen:     listen,
		AdminListen:      adminListen,
		Routers:          nRouters,
		ClusterMemBudget: clusterBudget,
		Logf:             logfFor(quiet),
	})
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ormpd: cluster on %s (%d local shards, %d router(s), admin %s)\n",
			c.Addr(), n, nRouters, c.AdminAddr())
	}
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-sigCtx.Done()
	stop()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = c.Shutdown(ctx)
	stats, merr := c.Merge(outDir)
	if merr != nil {
		return merr
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ormpd: merged %d session(s) into %s (%d degraded, %d approx, %d skipped)\n",
			stats.Sessions, outDir, stats.Degraded, stats.Approx, stats.Skipped)
	}
	return err
}

// runMerge is the offline merge plane: combine shard final directories
// into the cluster report. Skipped final states make the report partial:
// the artifacts are written and correct for what they cover, and the
// tool exits 2 so automation cannot mistake best-effort for complete.
func runMerge(dirs []string, outDir string, maxLMADs int, quiet bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	stats, err := serve.ClusterReport(dirs, outDir, maxLMADs, logfFor(quiet))
	if err != nil {
		return err
	}
	fmt.Printf("merged %d session(s) into %s (%d degraded, %d approx, %d skipped)\n",
		stats.Sessions, outDir, stats.Degraded, stats.Approx, stats.Skipped)
	if stats.Skipped > 0 {
		return &serve.PartialReportError{Skipped: stats.Skipped}
	}
	return nil
}
