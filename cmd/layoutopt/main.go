// Command layoutopt runs the profile-directed data-layout optimizations the
// paper motivates (§1, §3.2): field reordering driven by the offset
// dimension and CCDP-style object clustering driven by the object dimension,
// each evaluated by replaying the object-relative stream through a cache
// simulator under the original and optimized layouts.
//
// It is a thin wrapper over the shared optimize pipeline (internal/cliutil):
// one derivation pass feeds the streaming layout planner, and the field and
// clustering halves of the resulting plan are evaluated separately and
// together. `ormprof optimize` runs the same pipeline end-to-end (ORMPLAN
// serialization, live re-run, per-level deltas).
//
// Usage:
//
//	layoutopt [-workload NAME] [-scale N] [-seed N] [-cache l1|l2]
//	          [-record trace.ormtrace | -replay trace.ormtrace]
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cachesim"
	"ormprof/internal/cliutil"
	"ormprof/internal/layout"
	"ormprof/internal/plan"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "197.parser", "workload name")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		cache    = flag.String("cache", "l1", "cache model: l1 or l2")
	)
	tf := cliutil.RegisterTraceFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*workload, workloads.Config{Scale: *scale, Seed: *seed}, *cache, tf); err != nil {
		cliutil.Fatal("layoutopt", err)
	}
}

func run(workload string, wcfg workloads.Config, cache string, tf *cliutil.TraceFlags) error {
	cfg := cachesim.L1D
	if cache == "l2" {
		cfg = cachesim.L2
	} else if cache != "l1" {
		return fmt.Errorf("unknown cache %q", cache)
	}

	ev, err := tf.Load(workload, wcfg)
	if err != nil {
		return err
	}
	// One shared derivation pass: OMC translation, the record stream, and
	// the streaming layout planner. Salvaged errors (lenient corruption
	// skip, deadline, budget degradation) still yield partial results and
	// exit 2 through deg.
	var deg cliutil.Degraded
	d, err := ev.DeriveLayout(uint64(wcfg.Seed))
	if err := deg.Check(err); err != nil {
		return err
	}
	if d.OMC == nil {
		fmt.Printf("workload %s: layout analysis unavailable (degraded to %s)\n", ev.Name, d.Ladder.Rung())
		if err := cliutil.WriteGovernance(os.Stdout, d.Ladder); err != nil {
			return err
		}
		if err := deg.Check(d.Ladder.Err()); err != nil {
			return err
		}
		return deg.Err()
	}
	recs, o := d.Records, d.OMC
	full := d.Planner.BuildPlan(ev.Name, o)
	orig := layout.OriginalResolver(layout.OMCInfo{OMC: o})

	before, _ := layout.Evaluate(recs, orig, cfg)
	fmt.Printf("workload %s, %d accesses, cache %dKiB/%dB-line/%d-way\n\n",
		ev.Name, len(recs), cfg.SizeBytes>>10, cfg.LineBytes, cfg.Ways)
	fmt.Printf("original layout:   %8d misses (%.2f%% miss rate)\n", before.Misses, 100*before.MissRate())

	// The plan's two halves, evaluated separately: field reordering alone,
	// clustering alone, then the full plan.
	fieldsOnly := &plan.Plan{Workload: full.Workload, Region: full.Region, Fields: full.Fields}
	afterF, _ := layout.Evaluate(recs, layout.PlanResolver(fieldsOnly, o), cfg)
	fmt.Printf("field reordering:  %8d misses (%.2f%%)  — %+.1f%% misses, %d sites replanned\n",
		afterF.Misses, 100*afterF.MissRate(), -layout.Improvement(before, afterF), len(full.Fields))

	clusterOnly := &plan.Plan{Workload: full.Workload, Region: full.Region, Placements: full.Placements}
	afterC, _ := layout.Evaluate(recs, layout.PlanResolver(clusterOnly, o), cfg)
	fmt.Printf("object clustering: %8d misses (%.2f%%)  — %+.1f%% misses, %d objects packed\n",
		afterC.Misses, 100*afterC.MissRate(), -layout.Improvement(before, afterC), len(full.Placements))

	bothResolver := layout.PlanResolver(full, o)
	both, _ := layout.Evaluate(recs, bothResolver, cfg)
	fmt.Printf("both:              %8d misses (%.2f%%)  — %+.1f%% misses\n",
		both.Misses, 100*both.MissRate(), -layout.Improvement(before, both))

	// Cycle-level estimate through an L1+L2 hierarchy (4 / 12 / 200 cycle
	// latencies): the end-to-end payoff of the layout changes.
	amat := func(res layout.Resolver) float64 {
		h := cachesim.NewHierarchy(cachesim.L1D, cachesim.L2)
		h.ReplayRecords(recs, res)
		return h.AMAT(4, 12, 200)
	}
	beforeAMAT, afterAMAT := amat(orig), amat(bothResolver)
	fmt.Printf("\nAMAT (L1 4cy, L2 12cy, mem 200cy): %.2f -> %.2f cycles/access (%.1f%% faster)\n",
		beforeAMAT, afterAMAT, 100*(1-afterAMAT/beforeAMAT))
	if d.Ladder != nil {
		if err := cliutil.WriteGovernance(os.Stdout, d.Ladder); err != nil {
			return err
		}
		if err := deg.Check(d.Ladder.Err()); err != nil {
			return err
		}
	}
	return deg.Err()
}
