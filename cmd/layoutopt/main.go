// Command layoutopt runs the profile-directed data-layout optimizations the
// paper motivates (§1, §3.2): field reordering driven by the offset
// dimension and CCDP-style object clustering driven by the object dimension,
// each evaluated by replaying the object-relative stream through a cache
// simulator under the original and optimized layouts.
//
// Usage:
//
//	layoutopt [-workload NAME] [-scale N] [-seed N] [-cache l1|l2]
//	          [-record trace.ormtrace | -replay trace.ormtrace]
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cachesim"
	"ormprof/internal/cliutil"
	"ormprof/internal/govern"
	"ormprof/internal/layout"
	"ormprof/internal/omc"
	"ormprof/internal/profiler"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "197.parser", "workload name")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		cache    = flag.String("cache", "l1", "cache model: l1 or l2")
	)
	tf := cliutil.RegisterTraceFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*workload, workloads.Config{Scale: *scale, Seed: *seed}, *cache, tf); err != nil {
		cliutil.Fatal("layoutopt", err)
	}
}

func run(workload string, wcfg workloads.Config, cache string, tf *cliutil.TraceFlags) error {
	cfg := cachesim.L1D
	if cache == "l2" {
		cfg = cachesim.L2
	} else if cache != "l1" {
		return fmt.Errorf("unknown cache %q", cache)
	}

	ev, err := tf.Load(workload, wcfg)
	if err != nil {
		return err
	}
	// Translate degrades gracefully: a salvaged pass still yields the
	// partial record stream, and the remembered error makes the tool exit 2.
	// Under -mem-budget the record collector itself is governed — once the
	// ladder drops below the sampled rung the materialized stream is gone
	// and only the governance report renders.
	var deg cliutil.Degraded
	var recs []profiler.Record
	var o *omc.OMC
	var lad *govern.Ladder
	if ev.Governed() {
		lad, recs, o, err = ev.TranslateGoverned(uint64(wcfg.Seed))
	} else {
		recs, o, err = ev.Translate()
	}
	if err := deg.Check(err); err != nil {
		return err
	}
	if lad != nil && o == nil {
		fmt.Printf("workload %s: layout analysis unavailable (degraded to %s)\n", ev.Name, lad.Rung())
		if err := cliutil.WriteGovernance(os.Stdout, lad); err != nil {
			return err
		}
		if err := deg.Check(lad.Err()); err != nil {
			return err
		}
		return deg.Err()
	}
	info := layout.OMCInfo{OMC: o}
	orig := layout.OriginalResolver(info)

	before, _ := layout.Evaluate(recs, orig, cfg)
	fmt.Printf("workload %s, %d accesses, cache %dKiB/%dB-line/%d-way\n\n",
		ev.Name, len(recs), cfg.SizeBytes>>10, cfg.LineBytes, cfg.Ways)
	fmt.Printf("original layout:   %8d misses (%.2f%% miss rate)\n", before.Misses, 100*before.MissRate())

	// Field reordering: plan for every group whose objects share one size
	// (record size = object size; pool groups would need the record size
	// supplied, as cmd-line knob — kept simple here).
	var plans []*layout.FieldPlan
	for _, g := range o.Groups() {
		objs := o.Objects(g.ID)
		if len(objs) == 0 {
			continue
		}
		size := objs[0].Size
		uniform := true
		for _, ob := range objs {
			if ob.Size != size {
				uniform = false
				break
			}
		}
		if !uniform || size%layout.SlotSize != 0 || size < 2*layout.SlotSize {
			continue
		}
		plan, err := layout.PlanFields(recs, g.ID, size)
		if err != nil {
			continue
		}
		plans = append(plans, plan)
	}
	afterF, _ := layout.Evaluate(recs, layout.FieldResolver(orig, plans...), cfg)
	fmt.Printf("field reordering:  %8d misses (%.2f%%)  — %+.1f%% misses, %d groups replanned\n",
		afterF.Misses, 100*afterF.MissRate(), -layout.Improvement(before, afterF), len(plans))

	// Object clustering.
	plan := layout.PlanClusters(recs, info)
	afterC, _ := layout.Evaluate(recs, layout.ClusterResolver(orig, plan), cfg)
	fmt.Printf("object clustering: %8d misses (%.2f%%)  — %+.1f%% misses, %d objects packed\n",
		afterC.Misses, 100*afterC.MissRate(), -layout.Improvement(before, afterC), plan.Packed)

	// Both.
	bothResolver := layout.FieldResolver(layout.ClusterResolver(orig, plan), plans...)
	both, _ := layout.Evaluate(recs, bothResolver, cfg)
	fmt.Printf("both:              %8d misses (%.2f%%)  — %+.1f%% misses\n",
		both.Misses, 100*both.MissRate(), -layout.Improvement(before, both))

	// Cycle-level estimate through an L1+L2 hierarchy (4 / 12 / 200 cycle
	// latencies): the end-to-end payoff of the layout changes.
	amat := func(res layout.Resolver) float64 {
		h := cachesim.NewHierarchy(cachesim.L1D, cachesim.L2)
		for _, r := range recs {
			if addr, ok := res(r.Ref); ok {
				h.Access(addr, r.Size)
			}
		}
		return h.AMAT(4, 12, 200)
	}
	beforeAMAT, afterAMAT := amat(orig), amat(bothResolver)
	fmt.Printf("\nAMAT (L1 4cy, L2 12cy, mem 200cy): %.2f -> %.2f cycles/access (%.1f%% faster)\n",
		beforeAMAT, afterAMAT, 100*(1-afterAMAT/beforeAMAT))
	if lad != nil {
		if err := cliutil.WriteGovernance(os.Stdout, lad); err != nil {
			return err
		}
		if err := deg.Check(lad.Err()); err != nil {
			return err
		}
	}
	return deg.Err()
}
