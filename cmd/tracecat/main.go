// Command tracecat prints, filters, and counts the records of a recorded
// probe trace (the ORMTRACE format written by -record / ormprof record).
//
// Usage:
//
//	tracecat [-n N] [-kind access|alloc|free] [-instr ID] [-site ID]
//	         [-from T] [-to T] [-count] [-stats] FILE.ormtrace
//
// With no flags it prints every record. Filters compose (logical AND);
// -count prints only the number of matching records, -stats a summary of
// the whole trace.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
)

func main() {
	var (
		n     = flag.Int("n", 0, "print at most N matching records (0 = all)")
		kind  = flag.String("kind", "", "keep only records of this kind: access, alloc, or free")
		instr = flag.Int("instr", -1, "keep only access records of this instruction ID")
		site  = flag.Int("site", -1, "keep only alloc records of this allocation site ID")
		from  = flag.Uint64("from", 0, "keep only records with time >= this")
		to    = flag.Uint64("to", 0, "keep only records with time <= this (0 = no upper bound)")
		count = flag.Bool("count", false, "print only the number of matching records")
		stats = flag.Bool("stats", false, "print a summary of the whole trace instead of records")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecat [flags] FILE.ormtrace")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if err := run(flag.Arg(0), *n, *kind, *instr, *site, *from, *to, *count, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
}

func run(path string, n int, kind string, instr, site int, from, to uint64, count, stats bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := tracefmt.NewReader(f)
	if err != nil {
		return err
	}

	var wantKind trace.EventKind
	haveKind := kind != ""
	switch kind {
	case "":
	case "access":
		wantKind = trace.EvAccess
	case "alloc":
		wantKind = trace.EvAlloc
	case "free":
		wantKind = trace.EvFree
	default:
		return fmt.Errorf("unknown -kind %q (want access, alloc, or free)", kind)
	}

	match := func(e trace.Event) bool {
		if haveKind && e.Kind != wantKind {
			return false
		}
		if instr >= 0 && (e.Kind != trace.EvAccess || e.Instr != trace.InstrID(instr)) {
			return false
		}
		if site >= 0 && (e.Kind != trace.EvAlloc || e.Site != trace.SiteID(site)) {
			return false
		}
		if uint64(e.Time) < from {
			return false
		}
		if to != 0 && uint64(e.Time) > to {
			return false
		}
		return true
	}

	if stats {
		sb := &trace.StatsBuilder{}
		total, err := trace.Drain(r, sb)
		if err != nil {
			return err
		}
		s := sb.Stats()
		fmt.Printf("trace %s: workload %q, format v%d\n", path, r.Name(), tracefmt.Version)
		fmt.Printf("  %d events: %d loads, %d stores, %d allocs, %d frees\n",
			total, s.Loads, s.Stores, s.Allocs, s.Frees)
		fmt.Printf("  %d distinct instructions, %d distinct sites (%d named), peak %d bytes live\n",
			s.Instrs, s.Sites, len(r.Sites()), s.BytesLive)
		return nil
	}

	matched, printed := 0, 0
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if !match(e) {
			continue
		}
		matched++
		if count {
			continue
		}
		if n > 0 && printed == n {
			continue
		}
		fmt.Println(e)
		printed++
	}
	if count {
		fmt.Println(matched)
	} else if matched > printed {
		fmt.Printf("… %d more matching records\n", matched-printed)
	}
	return nil
}
