// Command tracecat prints, filters, counts, and verifies the records of a
// recorded probe trace (the ORMTRACE format written by -record / ormprof
// record).
//
// Usage:
//
//	tracecat [-n N] [-kind access|alloc|free] [-instr ID] [-site ID]
//	         [-from T] [-to T] [-count] [-stats] [-approx] [-lenient]
//	         [-verify] FILE.ormtrace
//
// With no flags it prints every record. Filters compose (logical AND);
// -count prints only the number of matching records, -stats a summary of
// the whole trace. -lenient skips damaged frames instead of aborting;
// -verify checks trace integrity end to end and reports a damage summary.
// Exit codes: 0 clean, 1 unreadable or hard error, 2 readable but damaged
// (some events were lost).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/govern"
	"ormprof/internal/sketch"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
)

func main() {
	var (
		n       = flag.Int("n", 0, "print at most N matching records (0 = all)")
		kind    = flag.String("kind", "", "keep only records of this kind: access, alloc, or free")
		instr   = flag.Int("instr", -1, "keep only access records of this instruction ID")
		site    = flag.Int("site", -1, "keep only alloc records of this allocation site ID")
		from    = flag.Uint64("from", 0, "keep only records with time >= this")
		to      = flag.Uint64("to", 0, "keep only records with time <= this (0 = no upper bound)")
		count   = flag.Bool("count", false, "print only the number of matching records")
		stats   = flag.Bool("stats", false, "print a summary of the whole trace instead of records")
		lenient = flag.Bool("lenient", false, "skip damaged frames instead of aborting (exit code 2 if events were lost)")
		verify  = flag.Bool("verify", false, "verify trace integrity end to end and print a damage report")
		approx  = flag.Bool("approx", false, "with -stats: summarize with fixed-memory sketches and print the top-K heavy hitters with their error bounds")
	)
	memBudget := cliutil.SizeFlag(flag.CommandLine, "mem-budget",
		"memory budget (e.g. 64M) for -stats; over budget the summary degrades and the tool exits 2 (0 = unlimited)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecat [flags] FILE.ormtrace")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *approx && !*stats {
		fmt.Fprintln(os.Stderr, "tracecat: -approx requires -stats (sketches summarize; they do not print records)")
		flag.Usage()
		os.Exit(2)
	}

	var err error
	if *verify {
		err = verifyTrace(flag.Arg(0))
	} else {
		err = run(flag.Arg(0), *n, *kind, *instr, *site, *from, *to, *count, *stats, *lenient, *approx, *memBudget)
	}
	if err != nil {
		cliutil.Fatal("tracecat", err)
	}
}

// verifyTrace reads the whole trace in lenient mode and reports its
// integrity: a clean pass returns nil (exit 0); a damaged-but-salvageable
// trace prints what was lost and returns the *tracefmt.CorruptionError
// (exit 2); an unreadable header is a hard error (exit 1).
func verifyTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := tracefmt.NewReader(f, tracefmt.WithLenient())
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	_, err = trace.Drain(r, trace.SinkFunc(func(trace.Event) {}))
	st := r.Stats()
	fmt.Printf("%s: ORMTRACE v%d, workload %q\n", path, r.Version(), r.Name())
	if err == nil && !st.Damaged() {
		fmt.Printf("  OK: %d frames, %d events, no damage\n", st.Frames, st.Events)
		return nil
	}
	fmt.Printf("  DAMAGED: %d corruption incident(s)\n", st.Corruptions)
	fmt.Printf("  salvaged %d events in %d frames; lost >=%d events (%d frames skipped, %d bytes discarded)\n",
		st.Events, st.Frames, st.SkippedEvents, st.SkippedFrames, st.SkippedBytes)
	if err == nil {
		// Damage without a terminal error should not happen, but never
		// report a damaged trace as clean.
		err = &tracefmt.CorruptionError{Stats: st}
	}
	return err
}

func run(path string, n int, kind string, instr, site int, from, to uint64, count, stats, lenient, approx bool, memBudget int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var opts []tracefmt.ReaderOption
	if lenient {
		opts = append(opts, tracefmt.WithLenient())
	}
	r, err := tracefmt.NewReader(f, opts...)
	if err != nil {
		return err
	}

	var wantKind trace.EventKind
	haveKind := kind != ""
	switch kind {
	case "":
	case "access":
		wantKind = trace.EvAccess
	case "alloc":
		wantKind = trace.EvAlloc
	case "free":
		wantKind = trace.EvFree
	default:
		return fmt.Errorf("unknown -kind %q (want access, alloc, or free)", kind)
	}

	match := func(e trace.Event) bool {
		if haveKind && e.Kind != wantKind {
			return false
		}
		if instr >= 0 && (e.Kind != trace.EvAccess || e.Instr != trace.InstrID(instr)) {
			return false
		}
		if site >= 0 && (e.Kind != trace.EvAlloc || e.Site != trace.SiteID(site)) {
			return false
		}
		if uint64(e.Time) < from {
			return false
		}
		if to != 0 && uint64(e.Time) > to {
			return false
		}
		return true
	}

	// In lenient mode a damaged trace still streams everything salvageable;
	// the terminal *tracefmt.CorruptionError is remembered so results print
	// before the tool exits 2.
	var deg cliutil.Degraded

	if stats {
		if approx || memBudget > 0 {
			// The stats builder's instruction/site/live tables are the only
			// unbounded state here; a directly built ladder governs them.
			// -approx starts the ladder on the fixed-memory sketch rung.
			cfg := govern.Config{
				Budget: govern.NewBudget(memBudget),
				Full:   func() govern.Mode { return &trace.StatsBuilder{} },
			}
			if approx {
				cfg.StartRung = govern.RungSketchStride
			}
			lad := govern.NewLadder(cfg)
			total, derr := trace.Drain(r, lad)
			if err := deg.Check(derr); err != nil {
				return err
			}
			if sb, ok := lad.FullMode().(*trace.StatsBuilder); ok {
				printStats(path, r, sb, total)
			} else if snap := lad.Snapshot(); snap.Rung.Sketch() {
				if err := printApproxStats(path, r, snap, total); err != nil {
					return err
				}
			} else {
				fmt.Printf("trace %s: summary unavailable (degraded to %s)\n", path, lad.Rung())
			}
			if err := cliutil.WriteGovernance(os.Stdout, lad); err != nil {
				return err
			}
			if err := deg.Check(lad.Err()); err != nil {
				return err
			}
			return deg.Err()
		}
		sb := &trace.StatsBuilder{}
		total, derr := trace.Drain(r, sb)
		if err := deg.Check(derr); err != nil {
			return err
		}
		printStats(path, r, sb, total)
		return deg.Err()
	}

	matched, printed := 0, 0
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if herr := deg.Check(err); herr != nil {
				return herr
			}
			break // salvaged: everything readable has been delivered
		}
		if !match(e) {
			continue
		}
		matched++
		if count {
			continue
		}
		if n > 0 && printed == n {
			continue
		}
		fmt.Println(e)
		printed++
	}
	if count {
		fmt.Println(matched)
	} else if matched > printed {
		fmt.Printf("… %d more matching records\n", matched-printed)
	}
	return deg.Err()
}

// printApproxStats prints the sketch-rung summary: exact scalar totals
// plus the top-K heavy hitters with their one-sided error bounds. The full
// error accounting (epsilon/delta, digram FPP) follows in the governance
// report.
func printApproxStats(path string, r *tracefmt.Reader, snap *govern.Snapshot, total int) error {
	fmt.Printf("trace %s: workload %q, format v%d (approximate summary)\n", path, r.Name(), r.Version())
	switch {
	case snap.SketchStride != nil:
		s := snap.SketchStride
		fmt.Printf("  %d events: %d loads, %d stores, %d allocs, %d frees\n",
			total, s.Loads, s.Stores, s.Allocs, s.Frees)
		hot, err := sketch.RestoreTopK(s.Hot)
		if err != nil {
			return err
		}
		ents := hot.Entries()
		fmt.Printf("  top-%d hot cache lines (space-saving, overcount <= %d):\n", len(ents), hot.ErrorBound())
		for _, e := range ents {
			fmt.Printf("    line %#x count %d err %d\n", e.Key.A<<6, e.Count, e.Err)
		}
	case snap.SketchCounters != nil:
		s := snap.SketchCounters
		fmt.Printf("  %d events: %d loads, %d stores, %d allocs, %d frees\n",
			total, s.Loads, s.Stores, s.Allocs, s.Frees)
		hot, err := sketch.RestoreTopK(s.Hot)
		if err != nil {
			return err
		}
		ents := hot.Entries()
		fmt.Printf("  top-%d hot allocation sites (space-saving, overcount <= %d):\n", len(ents), hot.ErrorBound())
		for _, e := range ents {
			fmt.Printf("    site %d count %d err %d\n", e.Key.A, e.Count, e.Err)
		}
	}
	return nil
}

func printStats(path string, r *tracefmt.Reader, sb *trace.StatsBuilder, total int) {
	s := sb.Stats()
	fmt.Printf("trace %s: workload %q, format v%d\n", path, r.Name(), r.Version())
	fmt.Printf("  %d events: %d loads, %d stores, %d allocs, %d frees\n",
		total, s.Loads, s.Stores, s.Allocs, s.Frees)
	fmt.Printf("  %d distinct instructions, %d distinct sites (%d named), peak %d bytes live\n",
		s.Instrs, s.Sites, len(r.Sites()), s.BytesLive)
}
