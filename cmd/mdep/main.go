// Command mdep runs the paper's memory dependence frequency experiment
// (§4.2.1): it compares the LEAP LMAD-based dependence post-processor and
// the Connors windowed profiler against a lossless raw-address baseline,
// reproducing Figures 6, 7, and 8.
//
// Usage:
//
//	mdep [-scale N] [-seed N] [-max-lmads N] [-window N]
//	     [-workload NAME] [-record trace.ormtrace | -replay trace.ormtrace]
//
// With no -workload (and no -replay) all seven benchmarks run. A single
// workload — live or replayed from a recorded trace — prints that
// benchmark's own error distributions.
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/depend"
	"ormprof/internal/experiments"
	"ormprof/internal/govern"
	"ormprof/internal/leap"
	"ormprof/internal/report"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "analyze a single workload (default: all seven)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		maxLMADs = flag.Int("max-lmads", 0, "LEAP LMAD budget (0 = paper default of 30)")
		window   = flag.Int("window", 0, "Connors store-history window (0 = default)")
		bench    = flag.String("benchmark", "", "also print this benchmark's own distributions")
	)
	tf := cliutil.RegisterTraceFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*workload, workloads.Config{Scale: *scale, Seed: *seed}, *maxLMADs, *window, *bench, tf); err != nil {
		cliutil.Fatal("mdep", err)
	}
}

func binLabels() []string {
	labels := make([]string, depend.NumBins)
	for i := range labels {
		labels[i] = fmt.Sprintf("%+d%%", depend.BinError(i))
	}
	return labels
}

func run(workload string, cfg workloads.Config, maxLMADs, window int, bench string, tf *cliutil.TraceFlags) error {
	if workload != "" || tf.Active() {
		ev, err := tf.Load(workload, cfg)
		if err != nil {
			return err
		}
		return depOne(ev, maxLMADs, window, uint64(cfg.Seed))
	}

	rows := experiments.Dependence(experiments.DepConfig{
		Workloads: cfg,
		MaxLMADs:  maxLMADs,
		Window:    window,
	})

	tbl := report.NewTable("Benchmark", "Pairs", "LEAP ±10%", "LEAP exact", "Connors ±10%", "Connors exact")
	for _, r := range rows {
		tbl.AddRowf(r.Benchmark, r.LEAP.Pairs,
			report.Pct(100*r.LEAP.WithinTen()), report.Pct(100*r.LEAP.Exact()),
			report.Pct(100*r.Connors.WithinTen()), report.Pct(100*r.Connors.Exact()))
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout

	fig8 := experiments.Summarize(rows)
	labels := binLabels()

	fmt.Println("\nFigure 6 — LEAP error distribution (average over benchmarks):")
	report.BarChart(os.Stdout, labels, fig8.LEAP.Bins[:], 48)

	fmt.Println("\nFigure 7 — Connors error distribution (average over benchmarks):")
	report.BarChart(os.Stdout, labels, fig8.Connors.Bins[:], 48)

	fmt.Printf("\nFigure 8 — correct-or-within-10%%: LEAP %.1f%%, Connors %.1f%% (improvement %.0f%%)\n",
		100*fig8.LEAPWithin10, 100*fig8.ConnWithin10, fig8.ImprovementPct)
	fmt.Println("Paper: LEAP ~75% within 10%, 56% more pairs correct-or-within-10% than Connors.")

	if bench != "" {
		for _, r := range rows {
			if r.Benchmark != bench {
				continue
			}
			printDistributions(r.Benchmark, r.LEAP, r.Connors)
			return nil
		}
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	return nil
}

// depOne runs the dependence comparison on a single event stream — three
// streaming passes: the lossless baseline, the LEAP estimate, and Connors.
// Salvaged passes still print the comparison over the partial stream; the
// remembered error makes the tool exit 2.
func depOne(ev *cliutil.Events, maxLMADs, window int, seed uint64) error {
	var deg cliutil.Degraded
	ideal := depend.NewIdeal()
	_, perr := ev.Pass(ideal)
	if err := deg.Check(perr); err != nil {
		return err
	}
	// Only the LEAP estimate is governed by -mem-budget: the lossless
	// baseline and the Connors profiler ARE the experiment's ground truth,
	// so degrading them would corrupt the comparison rather than bound it.
	var llad *govern.Ladder
	var leapRes *depend.Result
	if ev.Governed() {
		llad, _, perr = ev.GovernedPass(seed, func() govern.Mode { return leap.New(ev.Sites, maxLMADs) })
		if err := deg.Check(perr); err != nil {
			return err
		}
		if lp, ok := llad.FullMode().(*leap.Profiler); ok {
			leapRes = depend.FromLEAP(lp.Profile(ev.Name))
		}
	} else {
		lp := leap.New(ev.Sites, maxLMADs)
		_, perr = ev.Pass(lp)
		if err := deg.Check(perr); err != nil {
			return err
		}
		leapRes = depend.FromLEAP(lp.Profile(ev.Name))
	}
	con := depend.NewConnors(window)
	_, perr = ev.Pass(con)
	if err := deg.Check(perr); err != nil {
		return err
	}
	if leapRes == nil {
		fmt.Printf("workload %s: LEAP estimate unavailable (degraded to %s); Connors only\n",
			ev.Name, llad.Rung())
		printDistributions(ev.Name,
			depend.ErrorDist{},
			depend.Distribution(ideal.Result(), con.Result()))
	} else {
		printDistributions(ev.Name,
			depend.Distribution(ideal.Result(), leapRes),
			depend.Distribution(ideal.Result(), con.Result()))
	}
	if llad != nil {
		if err := cliutil.WriteGovernance(os.Stdout, llad); err != nil {
			return err
		}
		if err := deg.Check(llad.Err()); err != nil {
			return err
		}
	}
	return deg.Err()
}

func printDistributions(name string, leapDist, connDist depend.ErrorDist) {
	labels := binLabels()
	fmt.Printf("%s — LEAP error distribution (%d pairs):\n", name, leapDist.Pairs)
	report.BarChart(os.Stdout, labels, leapDist.Bins[:], 48)
	fmt.Printf("\n%s — Connors error distribution:\n", name)
	report.BarChart(os.Stdout, labels, connDist.Bins[:], 48)
	fmt.Printf("\ncorrect-or-within-10%%: LEAP %.1f%%, Connors %.1f%%\n",
		100*leapDist.WithinTen(), 100*connDist.WithinTen())
}
