// Command mdep runs the paper's memory dependence frequency experiment
// (§4.2.1): it compares the LEAP LMAD-based dependence post-processor and
// the Connors windowed profiler against a lossless raw-address baseline,
// reproducing Figures 6, 7, and 8.
//
// Usage:
//
//	mdep [-scale N] [-seed N] [-max-lmads N] [-window N]
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/depend"
	"ormprof/internal/experiments"
	"ormprof/internal/report"
	"ormprof/internal/workloads"
)

func main() {
	var (
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		maxLMADs = flag.Int("max-lmads", 0, "LEAP LMAD budget (0 = paper default of 30)")
		window   = flag.Int("window", 0, "Connors store-history window (0 = default)")
		bench    = flag.String("benchmark", "", "also print this benchmark's own distributions")
	)
	flag.Parse()

	rows := experiments.Dependence(experiments.DepConfig{
		Workloads: workloads.Config{Scale: *scale, Seed: *seed},
		MaxLMADs:  *maxLMADs,
		Window:    *window,
	})

	tbl := report.NewTable("Benchmark", "Pairs", "LEAP ±10%", "LEAP exact", "Connors ±10%", "Connors exact")
	for _, r := range rows {
		tbl.AddRowf(r.Benchmark, r.LEAP.Pairs,
			report.Pct(100*r.LEAP.WithinTen()), report.Pct(100*r.LEAP.Exact()),
			report.Pct(100*r.Connors.WithinTen()), report.Pct(100*r.Connors.Exact()))
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout

	fig8 := experiments.Summarize(rows)
	labels := make([]string, depend.NumBins)
	for i := range labels {
		labels[i] = fmt.Sprintf("%+d%%", depend.BinError(i))
	}

	fmt.Println("\nFigure 6 — LEAP error distribution (average over benchmarks):")
	report.BarChart(os.Stdout, labels, fig8.LEAP.Bins[:], 48)

	fmt.Println("\nFigure 7 — Connors error distribution (average over benchmarks):")
	report.BarChart(os.Stdout, labels, fig8.Connors.Bins[:], 48)

	fmt.Printf("\nFigure 8 — correct-or-within-10%%: LEAP %.1f%%, Connors %.1f%% (improvement %.0f%%)\n",
		100*fig8.LEAPWithin10, 100*fig8.ConnWithin10, fig8.ImprovementPct)
	fmt.Println("Paper: LEAP ~75% within 10%, 56% more pairs correct-or-within-10% than Connors.")

	if *bench != "" {
		for _, r := range rows {
			if r.Benchmark != *bench {
				continue
			}
			fmt.Printf("\n%s — LEAP error distribution (%d pairs):\n", r.Benchmark, r.LEAP.Pairs)
			report.BarChart(os.Stdout, labels, r.LEAP.Bins[:], 48)
			fmt.Printf("\n%s — Connors error distribution:\n", r.Benchmark)
			report.BarChart(os.Stdout, labels, r.Connors.Bins[:], 48)
			return
		}
		fmt.Fprintf(os.Stderr, "mdep: unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
}
