// Command whomp collects WHOMP (object-relative multi-dimensional Sequitur)
// profiles for the benchmark workloads and compares them against the
// conventional raw-address Sequitur grammar, reproducing the paper's
// Figure 5.
//
// Usage:
//
//	whomp [-workload NAME] [-scale N] [-seed N] [-workers N] [-o profile.whomp]
//
// With no -workload, all seven benchmarks run and the Figure 5 table is
// printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/experiments"
	"ormprof/internal/report"
	"ormprof/internal/trace"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "run a single workload (default: all seven)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		out      = flag.String("o", "", "write the WHOMP profile of the (single) workload to this file")
		traceIn  = flag.String("trace", "", "profile a recorded .ormtrace file instead of running a workload")
		csvOut   = flag.Bool("csv", false, "emit the Figure 5 table as CSV (for plotting)")
		workers  = flag.Int("workers", 0, "grammar-construction workers (0 = GOMAXPROCS; profiles are identical for any count)")
	)
	flag.Parse()

	cfg := workloads.Config{Scale: *scale, Seed: *seed}
	if *traceIn != "" {
		if err := runTraceFile(*traceIn, *out, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "whomp:", err)
			os.Exit(1)
		}
		return
	}
	if *workload != "" {
		if err := runOne(*workload, cfg, *out, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "whomp:", err)
			os.Exit(1)
		}
		return
	}

	rows := experiments.Fig5(cfg)
	tbl := report.NewTable("Benchmark", "Accesses", "RASG syms", "OMSG syms", "RASG bytes", "OMSG bytes", "flate bytes", "Gain", "RASG time", "OMSG time")
	for _, r := range rows {
		tbl.AddRowf(r.Benchmark, r.Accesses, r.RASGSymbols, r.OMSGSymbols, r.RASGBytes, r.OMSGBytes,
			r.FlateBytes, report.Pct(r.GainPct), r.RASGTime.Round(1e6), r.OMSGTime.Round(1e6))
	}
	if *csvOut {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "whomp:", err)
			os.Exit(1)
		}
		return
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout

	fmt.Println()
	labels := make([]string, len(rows))
	gains := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Benchmark
		gains[i] = r.GainPct / 100
	}
	report.BarChart(os.Stdout, labels, gains, 40)
	fmt.Printf("\nFigure 5: OMSG is on average %.1f%% more compact than RASG (paper: 22%%)\n",
		experiments.AverageGain(rows))
}

// runTraceFile profiles a previously recorded probe trace ("collect once,
// profile many"): site names are unavailable, so groups get site#N names.
func runTraceFile(path, out string, workers int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := &trace.Buffer{}
	n, err := trace.ReadTrace(f, buf)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %d events from %s\n", n, path)

	wp := whomp.NewParallel(nil, workers)
	buf.Replay(wp)
	profile := wp.Profile(path)
	rasg := whomp.NewRASG()
	buf.Replay(rasg)
	fmt.Printf("  RASG: %8d symbols  %8d bytes\n", rasg.Symbols(), rasg.EncodedBytes())
	fmt.Printf("  OMSG: %8d symbols  %8d bytes  (%.1f%% smaller)\n",
		profile.Symbols(), profile.EncodedBytes(), whomp.CompressionGain(profile, rasg))
	if out != "" {
		of, err := os.Create(out)
		if err != nil {
			return err
		}
		defer of.Close()
		if _, err := profile.WriteTo(of); err != nil {
			return err
		}
		fmt.Printf("  wrote profile to %s\n", out)
	}
	return nil
}

func runOne(name string, cfg workloads.Config, out string, workers int) error {
	prog, err := workloads.New(name, cfg)
	if err != nil {
		return err
	}
	buf, sites := experiments.Record(prog, nil)

	wp := whomp.NewParallel(sites, workers)
	buf.Replay(wp)
	profile := wp.Profile(name)

	rasg := whomp.NewRASG()
	buf.Replay(rasg)

	fmt.Printf("workload %s: %d accesses, %d objects in %d groups\n",
		name, profile.Records, profile.Objects.NumObjects(), len(profile.Objects.Groups))
	fmt.Printf("  RASG: %8d symbols  %8d bytes\n", rasg.Symbols(), rasg.EncodedBytes())
	fmt.Printf("  OMSG: %8d symbols  %8d bytes  (%.1f%% smaller)\n",
		profile.Symbols(), profile.EncodedBytes(), whomp.CompressionGain(profile, rasg))

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := profile.WriteTo(f)
		if err != nil {
			return err
		}
		fmt.Printf("  wrote %d-byte profile (grammars + object table) to %s\n", n, out)
	}
	return nil
}
