// Command whomp collects WHOMP (object-relative multi-dimensional Sequitur)
// profiles for the benchmark workloads and compares them against the
// conventional raw-address Sequitur grammar, reproducing the paper's
// Figure 5.
//
// Usage:
//
//	whomp [-workload NAME] [-scale N] [-seed N] [-workers N] [-o profile.whomp]
//	      [-record trace.ormtrace | -replay trace.ormtrace]
//
// With no -workload (and no -replay), all seven benchmarks run and the
// Figure 5 table is printed. -record writes the probe trace alongside the
// live profile; -replay profiles a recorded trace instead of running a
// workload and produces a byte-identical profile.
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/experiments"
	"ormprof/internal/govern"
	"ormprof/internal/report"
	"ormprof/internal/whomp"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "run a single workload (default: all seven)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		out      = flag.String("o", "", "write the WHOMP profile of the (single) workload to this file")
		traceIn  = flag.String("trace", "", "deprecated alias for -replay")
		csvOut   = flag.Bool("csv", false, "emit the Figure 5 table as CSV (for plotting)")
	)
	workers := cliutil.WorkersFlag(flag.CommandLine)
	tf := cliutil.RegisterTraceFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*workload, workloads.Config{Scale: *scale, Seed: *seed}, *out, *traceIn, *csvOut, *workers, tf); err != nil {
		cliutil.Fatal("whomp", err)
	}
}

func run(workload string, cfg workloads.Config, out, traceIn string, csvOut bool, workers int, tf *cliutil.TraceFlags) error {
	if err := cliutil.CheckWorkers(workers); err != nil {
		return err
	}
	if traceIn != "" && tf.Replay == "" {
		tf.Replay = traceIn
	}
	if workload != "" || tf.Active() {
		return runOne(workload, cfg, out, workers, tf)
	}

	rows := experiments.Fig5(cfg)
	tbl := report.NewTable("Benchmark", "Accesses", "RASG syms", "OMSG syms", "RASG bytes", "OMSG bytes", "flate bytes", "Gain", "RASG time", "OMSG time")
	for _, r := range rows {
		tbl.AddRowf(r.Benchmark, r.Accesses, r.RASGSymbols, r.OMSGSymbols, r.RASGBytes, r.OMSGBytes,
			r.FlateBytes, report.Pct(r.GainPct), r.RASGTime.Round(1e6), r.OMSGTime.Round(1e6))
	}
	if csvOut {
		return tbl.WriteCSV(os.Stdout)
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout

	fmt.Println()
	labels := make([]string, len(rows))
	gains := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Benchmark
		gains[i] = r.GainPct / 100
	}
	report.BarChart(os.Stdout, labels, gains, 40)
	fmt.Printf("\nFigure 5: OMSG is on average %.1f%% more compact than RASG (paper: 22%%)\n",
		experiments.AverageGain(rows))
	return nil
}

// runOne profiles a single event stream — a live workload run or a
// replayed trace ("collect once, profile many") — and, because the trace
// header carries the workload name and site table, both paths produce
// byte-identical profiles. Salvaged passes (-lenient, -deadline) still
// print the partial profile; the remembered error makes the tool exit 2.
func runOne(workload string, cfg workloads.Config, out string, workers int, tf *cliutil.TraceFlags) error {
	ev, err := tf.Load(workload, cfg)
	if err != nil {
		return err
	}
	if ev.Governed() {
		// Governed runs are sequential: degradation trip points are then a
		// pure function of (stream, budget, seed), so output is identical
		// for every -workers setting.
		return runOneGoverned(ev, out, uint64(cfg.Seed))
	}
	var deg cliutil.Degraded

	wp := whomp.NewParallel(ev.Sites, workers)
	_, perr := ev.Pass(wp)
	if err := deg.Check(perr); err != nil {
		return err
	}
	profile := wp.Profile(ev.Name)

	rasg := whomp.NewRASG()
	_, perr = ev.Pass(rasg)
	if err := deg.Check(perr); err != nil {
		return err
	}

	fmt.Printf("workload %s: %d accesses, %d objects in %d groups\n",
		ev.Name, profile.Records, profile.Objects.NumObjects(), len(profile.Objects.Groups))
	fmt.Printf("  RASG: %8d symbols  %8d bytes\n", rasg.Symbols(), rasg.EncodedBytes())
	fmt.Printf("  OMSG: %8d symbols  %8d bytes  (%.1f%% smaller)\n",
		profile.Symbols(), profile.EncodedBytes(), whomp.CompressionGain(profile, rasg))

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := profile.WriteTo(f)
		if err != nil {
			return err
		}
		fmt.Printf("  wrote %d-byte profile (grammars + object table) to %s\n", n, out)
	}
	return deg.Err()
}

// runOneGoverned is runOne under a memory budget: both passes run behind
// degradation ladders sharing the invocation budget. Whatever survives
// still renders — a sampled profile, or just the governance report — and
// a degraded run exits 2 via the ladder's typed error.
func runOneGoverned(ev *cliutil.Events, out string, seed uint64) error {
	var deg cliutil.Degraded
	wlad, _, perr := ev.GovernedPass(seed, func() govern.Mode { return whomp.New(ev.Sites) })
	if err := deg.Check(perr); err != nil {
		return err
	}
	rlad, _, perr := ev.GovernedPass(seed, func() govern.Mode { return whomp.NewRASG() })
	if err := deg.Check(perr); err != nil {
		return err
	}

	if wp, ok := wlad.FullMode().(*whomp.Profiler); ok {
		profile := wp.Profile(ev.Name)
		fmt.Printf("workload %s: %d accesses, %d objects in %d groups\n",
			ev.Name, profile.Records, profile.Objects.NumObjects(), len(profile.Objects.Groups))
		if rasg, ok := rlad.FullMode().(*whomp.RASG); ok {
			fmt.Printf("  RASG: %8d symbols  %8d bytes\n", rasg.Symbols(), rasg.EncodedBytes())
			fmt.Printf("  OMSG: %8d symbols  %8d bytes  (%.1f%% smaller)\n",
				profile.Symbols(), profile.EncodedBytes(), whomp.CompressionGain(profile, rasg))
		} else {
			fmt.Printf("  OMSG: %8d symbols  %8d bytes  (RASG degraded to %s; no comparison)\n",
				profile.Symbols(), profile.EncodedBytes(), rlad.Rung())
		}
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			n, err := profile.WriteTo(f)
			if err != nil {
				return err
			}
			fmt.Printf("  wrote %d-byte profile (grammars + object table) to %s\n", n, out)
		}
	} else {
		fmt.Printf("workload %s: full profile unavailable (degraded to %s)\n", ev.Name, wlad.Rung())
	}
	if err := cliutil.WriteGovernance(os.Stdout, wlad, rlad); err != nil {
		return err
	}
	if err := deg.Check(wlad.Err()); err != nil {
		return err
	}
	if err := deg.Check(rlad.Err()); err != nil {
		return err
	}
	return deg.Err()
}
