// Command phasescan runs phase-cognizant LEAP profiling (the paper's §6
// future work, after Sherwood et al.'s phase tracking): it detects program
// phases from the instruction-frequency signature of access intervals,
// collects one LEAP profile per phase, and compares the aggregate capture
// against the monolithic profile.
//
// Usage:
//
//	phasescan [-workload NAME] [-scale N] [-seed N] [-interval N] [-max-lmads N]
//	          [-record trace.ormtrace | -replay trace.ormtrace]
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/govern"
	"ormprof/internal/leap"
	"ormprof/internal/omc"
	"ormprof/internal/phase"
	"ormprof/internal/profiler"
	"ormprof/internal/report"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "single workload (default: all seven)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		interval = flag.Int("interval", 4096, "accesses per phase-detection interval")
		maxLMADs = flag.Int("max-lmads", 0, "LMAD budget per stream (0 = paper default)")
	)
	tf := cliutil.RegisterTraceFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*workload, workloads.Config{Scale: *scale, Seed: *seed}, *interval, *maxLMADs, tf); err != nil {
		cliutil.Fatal("phasescan", err)
	}
}

func run(workload string, cfg workloads.Config, interval, maxLMADs int, tf *cliutil.TraceFlags) error {
	names := workloads.Names()
	if workload != "" {
		names = []string{workload}
	} else if tf.Active() {
		names = []string{""}
	}

	var deg cliutil.Degraded
	var lads []*govern.Ladder
	tbl := report.NewTable("Benchmark", "Phases", "Transitions", "Monolithic capture", "Phase-cognizant capture")
	for _, name := range names {
		flags := tf
		if workload == "" && !tf.Active() {
			flags = &cliutil.TraceFlags{}
		}
		ev, err := flags.Load(name, cfg)
		if err != nil {
			return err
		}

		// Only the monolithic LEAP baseline is governed by -mem-budget; the
		// phase-cognizant pass is the experiment's subject and stays
		// lossless so the comparison measures phases, not sampling.
		monoCell := "n/a"
		if ev.Governed() {
			mlad, _, perr := ev.GovernedPass(uint64(cfg.Seed), func() govern.Mode { return leap.New(ev.Sites, maxLMADs) })
			if err := deg.Check(perr); err != nil {
				return err
			}
			if mp, ok := mlad.FullMode().(*leap.Profiler); ok {
				acc, _ := mp.Profile(ev.Name).SampleQuality()
				monoCell = report.Pct(acc)
			} else {
				monoCell = "degraded (" + mlad.Rung().String() + ")"
			}
			lads = append(lads, mlad)
		} else {
			mono := leap.New(ev.Sites, maxLMADs)
			_, perr := ev.Pass(mono)
			if err := deg.Check(perr); err != nil {
				return err
			}
			acc, _ := mono.Profile(ev.Name).SampleQuality()
			monoCell = report.Pct(acc)
		}

		cog := phase.NewCognizantLEAP(phase.Config{IntervalLen: interval}, maxLMADs)
		cdc := profiler.NewCDC(omc.New(ev.Sites), cog)
		_, perr := ev.Pass(cdc)
		if err := deg.Check(perr); err != nil {
			return err
		}
		cdc.Finish()
		cogAcc, _ := phase.Quality(cog.Profiles(ev.Name))

		det := cog.Detector()
		tbl.AddRowf(ev.Name, det.NumPhases(), det.Transitions(),
			monoCell, report.Pct(cogAcc))
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout
	fmt.Println("\nphase-cognizant streams are more homogeneous, so the same LMAD budget")
	fmt.Println("captures at least as much per phase (§6 future work, implemented here).")
	if err := cliutil.WriteGovernance(os.Stdout, lads...); err != nil {
		return err
	}
	for _, lad := range lads {
		if err := deg.Check(lad.Err()); err != nil {
			return err
		}
	}
	return deg.Err()
}
