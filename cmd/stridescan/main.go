// Command stridescan runs the paper's memory stride experiment (§4.2.2): it
// identifies strongly strided instructions from the LEAP profile and scores
// them against a lossless stride profiler, reproducing Figure 9.
//
// Usage:
//
//	stridescan [-scale N] [-seed N] [-max-lmads N] [-workers N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/experiments"
	"ormprof/internal/leap"
	"ormprof/internal/report"
	"ormprof/internal/stride"
	"ormprof/internal/workloads"
)

func main() {
	var (
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		maxLMADs = flag.Int("max-lmads", 0, "LEAP LMAD budget (0 = paper default of 30)")
		verbose  = flag.Bool("v", false, "list the strongly strided instructions per benchmark")
		workers  = flag.Int("workers", 0, "profiling/post-processing workers (0 = GOMAXPROCS; reports are identical for any count)")
	)
	flag.Parse()

	cfg := workloads.Config{Scale: *scale, Seed: *seed}
	rows := experiments.Fig9(cfg, *maxLMADs)

	tbl := report.NewTable("Benchmark", "Strongly strided (real)", "Identified by LEAP", "Score", "Cross-object ext")
	for _, r := range rows {
		tbl.AddRowf(r.Benchmark, r.Real, r.Found, report.Pct(r.Score), report.Pct(r.ExtScore))
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout

	fmt.Println()
	labels := make([]string, len(rows))
	scores := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Benchmark
		scores[i] = r.Score / 100
	}
	report.BarChart(os.Stdout, labels, scores, 40)
	fmt.Printf("\nFigure 9: average stride score %.1f%% (paper: 88%%)\n", experiments.AverageScore(rows))

	if *verbose {
		for _, name := range workloads.Names() {
			prog, err := workloads.New(name, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "stridescan:", err)
				os.Exit(1)
			}
			buf, sites := experiments.Record(prog, nil)
			ideal := stride.NewIdeal()
			buf.Replay(ideal)
			lp := leap.NewParallel(sites, *maxLMADs, *workers)
			buf.Replay(lp)
			est := stride.FromLEAPParallel(lp.Profile(name), *workers)
			real := ideal.StronglyStrided()

			fmt.Printf("\n%s:\n", name)
			for _, id := range stride.SortedIDs(real) {
				ri := real[id]
				mark := "MISS"
				if ei, ok := est[id]; ok && ei.Stride == ri.Stride {
					mark = "ok"
				}
				fmt.Printf("  i%-4d stride %-6d (%.0f%% of accesses)  [%s]\n", id, ri.Stride, 100*ri.Frac, mark)
			}
		}
	}
}
