// Command stridescan runs the paper's memory stride experiment (§4.2.2): it
// identifies strongly strided instructions from the LEAP profile and scores
// them against a lossless stride profiler, reproducing Figure 9.
//
// Usage:
//
//	stridescan [-scale N] [-seed N] [-max-lmads N] [-workers N] [-v]
//	           [-workload NAME] [-record trace.ormtrace | -replay trace.ormtrace]
//
// With no -workload (and no -replay) all seven benchmarks run and the
// Figure 9 table is printed. A single workload — live or replayed from a
// recorded trace — prints that benchmark's strided instructions and score.
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/experiments"
	"ormprof/internal/govern"
	"ormprof/internal/leap"
	"ormprof/internal/report"
	"ormprof/internal/stride"
	"ormprof/internal/trace"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "scan a single workload (default: all seven)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		maxLMADs = flag.Int("max-lmads", 0, "LEAP LMAD budget (0 = paper default of 30)")
		verbose  = flag.Bool("v", false, "list the strongly strided instructions per benchmark")
	)
	workers := cliutil.WorkersFlag(flag.CommandLine)
	tf := cliutil.RegisterTraceFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*workload, workloads.Config{Scale: *scale, Seed: *seed}, *maxLMADs, *verbose, *workers, tf); err != nil {
		cliutil.Fatal("stridescan", err)
	}
}

func run(workload string, cfg workloads.Config, maxLMADs int, verbose bool, workers int, tf *cliutil.TraceFlags) error {
	if err := cliutil.CheckWorkers(workers); err != nil {
		return err
	}
	if workload != "" || tf.Active() {
		ev, err := tf.Load(workload, cfg)
		if err != nil {
			return err
		}
		return scanOne(ev, maxLMADs, workers, uint64(cfg.Seed))
	}

	rows := experiments.Fig9(cfg, maxLMADs)
	tbl := report.NewTable("Benchmark", "Strongly strided (real)", "Identified by LEAP", "Score", "Cross-object ext")
	for _, r := range rows {
		tbl.AddRowf(r.Benchmark, r.Real, r.Found, report.Pct(r.Score), report.Pct(r.ExtScore))
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout

	fmt.Println()
	labels := make([]string, len(rows))
	scores := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Benchmark
		scores[i] = r.Score / 100
	}
	report.BarChart(os.Stdout, labels, scores, 40)
	fmt.Printf("\nFigure 9: average stride score %.1f%% (paper: 88%%)\n", experiments.AverageScore(rows))

	if verbose {
		for _, name := range workloads.Names() {
			ev, err := (&cliutil.TraceFlags{}).Load(name, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("\n%s:\n", name)
			if err := scanOne(ev, maxLMADs, workers, uint64(cfg.Seed)); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanOne scores LEAP's stride identification for one event stream against
// the lossless reference profiler — two streaming passes. Salvaged passes
// still print the comparison; the remembered error makes the tool exit 2.
func scanOne(ev *cliutil.Events, maxLMADs, workers int, seed uint64) error {
	if ev.Governed() {
		return scanOneGoverned(ev, maxLMADs, seed)
	}
	var deg cliutil.Degraded
	ideal := stride.NewIdeal()
	_, perr := ev.Pass(ideal)
	if err := deg.Check(perr); err != nil {
		return err
	}
	lp := leap.NewParallel(ev.Sites, maxLMADs, workers)
	_, perr = ev.Pass(lp)
	if err := deg.Check(perr); err != nil {
		return err
	}
	est := stride.FromLEAPParallel(lp.Profile(ev.Name), workers)
	strong := ideal.StronglyStrided()
	real := stride.SortedIDs(strong)

	printScan(ev, strong, real, est)
	return deg.Err()
}

// scanOneGoverned runs both passes behind degradation ladders. The
// reference pass is special: its own stride-only rung IS the reference
// profiler, so the comparison survives two step-downs of that ladder.
func scanOneGoverned(ev *cliutil.Events, maxLMADs int, seed uint64) error {
	var deg cliutil.Degraded
	ilad, _, perr := ev.GovernedPass(seed, func() govern.Mode { return stride.NewIdeal() })
	if err := deg.Check(perr); err != nil {
		return err
	}
	llad, _, perr := ev.GovernedPass(seed, func() govern.Mode { return leap.New(ev.Sites, maxLMADs) })
	if err := deg.Check(perr); err != nil {
		return err
	}

	ideal, _ := ilad.FullMode().(*stride.Ideal)
	if ideal == nil {
		ideal = ilad.StrideProfiler()
	}
	var est map[trace.InstrID]stride.Info
	if lp, ok := llad.FullMode().(*leap.Profiler); ok {
		est = stride.FromLEAP(lp.Profile(ev.Name))
	}
	switch {
	case ideal == nil:
		fmt.Printf("workload %s: stride reference unavailable (degraded to %s)\n", ev.Name, ilad.Rung())
	case est == nil:
		fmt.Printf("workload %s: LEAP estimate unavailable (degraded to %s); reference only\n", ev.Name, llad.Rung())
		fallthrough
	default:
		strong := ideal.StronglyStrided()
		printScan(ev, strong, stride.SortedIDs(strong), est)
	}
	if err := cliutil.WriteGovernance(os.Stdout, ilad, llad); err != nil {
		return err
	}
	if err := deg.Check(ilad.Err()); err != nil {
		return err
	}
	if err := deg.Check(llad.Err()); err != nil {
		return err
	}
	return deg.Err()
}

// printScan renders the per-instruction comparison table and summary. A
// nil est (governed run degraded below stride capture) marks every real
// strided instruction MISS, which is exactly what the profile would say.
func printScan(ev *cliutil.Events, strong map[trace.InstrID]stride.Info, real []trace.InstrID, est map[trace.InstrID]stride.Info) {
	found := 0
	for _, id := range real {
		ri := strong[id]
		mark := "MISS"
		if ei, ok := est[id]; ok && ei.Stride == ri.Stride {
			mark = "ok"
			found++
		}
		fmt.Printf("  i%-4d stride %-6d (%.0f%% of accesses)  [%s]\n", id, ri.Stride, 100*ri.Frac, mark)
	}
	if len(real) > 0 {
		fmt.Printf("workload %s: %d/%d strongly strided instructions identified (%.0f%%)\n",
			ev.Name, found, len(real), 100*float64(found)/float64(len(real)))
	} else {
		fmt.Printf("workload %s: no strongly strided instructions\n", ev.Name)
	}
}
