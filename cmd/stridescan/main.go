// Command stridescan runs the paper's memory stride experiment (§4.2.2): it
// identifies strongly strided instructions from the LEAP profile and scores
// them against a lossless stride profiler, reproducing Figure 9.
//
// Usage:
//
//	stridescan [-scale N] [-seed N] [-max-lmads N] [-workers N] [-v]
//	           [-workload NAME] [-record trace.ormtrace | -replay trace.ormtrace]
//
// With no -workload (and no -replay) all seven benchmarks run and the
// Figure 9 table is printed. A single workload — live or replayed from a
// recorded trace — prints that benchmark's strided instructions and score.
package main

import (
	"flag"
	"fmt"
	"os"

	"ormprof/internal/cliutil"
	"ormprof/internal/experiments"
	"ormprof/internal/leap"
	"ormprof/internal/report"
	"ormprof/internal/stride"
	"ormprof/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "scan a single workload (default: all seven)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		maxLMADs = flag.Int("max-lmads", 0, "LEAP LMAD budget (0 = paper default of 30)")
		verbose  = flag.Bool("v", false, "list the strongly strided instructions per benchmark")
	)
	workers := cliutil.WorkersFlag(flag.CommandLine)
	tf := cliutil.RegisterTraceFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*workload, workloads.Config{Scale: *scale, Seed: *seed}, *maxLMADs, *verbose, *workers, tf); err != nil {
		cliutil.Fatal("stridescan", err)
	}
}

func run(workload string, cfg workloads.Config, maxLMADs int, verbose bool, workers int, tf *cliutil.TraceFlags) error {
	if err := cliutil.CheckWorkers(workers); err != nil {
		return err
	}
	if workload != "" || tf.Active() {
		ev, err := tf.Load(workload, cfg)
		if err != nil {
			return err
		}
		return scanOne(ev, maxLMADs, workers)
	}

	rows := experiments.Fig9(cfg, maxLMADs)
	tbl := report.NewTable("Benchmark", "Strongly strided (real)", "Identified by LEAP", "Score", "Cross-object ext")
	for _, r := range rows {
		tbl.AddRowf(r.Benchmark, r.Real, r.Found, report.Pct(r.Score), report.Pct(r.ExtScore))
	}
	tbl.WriteTo(os.Stdout) //nolint:errcheck // stdout

	fmt.Println()
	labels := make([]string, len(rows))
	scores := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Benchmark
		scores[i] = r.Score / 100
	}
	report.BarChart(os.Stdout, labels, scores, 40)
	fmt.Printf("\nFigure 9: average stride score %.1f%% (paper: 88%%)\n", experiments.AverageScore(rows))

	if verbose {
		for _, name := range workloads.Names() {
			ev, err := (&cliutil.TraceFlags{}).Load(name, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("\n%s:\n", name)
			if err := scanOne(ev, maxLMADs, workers); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanOne scores LEAP's stride identification for one event stream against
// the lossless reference profiler — two streaming passes. Salvaged passes
// still print the comparison; the remembered error makes the tool exit 2.
func scanOne(ev *cliutil.Events, maxLMADs, workers int) error {
	var deg cliutil.Degraded
	ideal := stride.NewIdeal()
	_, perr := ev.Pass(ideal)
	if err := deg.Check(perr); err != nil {
		return err
	}
	lp := leap.NewParallel(ev.Sites, maxLMADs, workers)
	_, perr = ev.Pass(lp)
	if err := deg.Check(perr); err != nil {
		return err
	}
	est := stride.FromLEAPParallel(lp.Profile(ev.Name), workers)
	strong := ideal.StronglyStrided()
	real := stride.SortedIDs(strong)

	found := 0
	for _, id := range real {
		ri := strong[id]
		mark := "MISS"
		if ei, ok := est[id]; ok && ei.Stride == ri.Stride {
			mark = "ok"
			found++
		}
		fmt.Printf("  i%-4d stride %-6d (%.0f%% of accesses)  [%s]\n", id, ri.Stride, 100*ri.Frac, mark)
	}
	if len(real) > 0 {
		fmt.Printf("workload %s: %d/%d strongly strided instructions identified (%.0f%%)\n",
			ev.Name, found, len(real), 100*float64(found)/float64(len(real)))
	} else {
		fmt.Printf("workload %s: no strongly strided instructions\n", ev.Name)
	}
	return deg.Err()
}
