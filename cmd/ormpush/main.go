// Command ormpush streams a trace into an ormpd daemon: either a
// recorded .ormtrace file (-replay) or a live workload run. The stream
// is cut into standalone ORMTRACE-v3 frames and pushed over the ORMP/1
// protocol with per-attempt timeouts, exponential backoff with jitter,
// and resume-from-last-acknowledged-frame across reconnects — a daemon
// restart mid-stream costs a retry, not the run.
//
// Usage:
//
//	ormpush -addr 127.0.0.1:7417 -workload linkedlist
//	ormpush -addr 127.0.0.1:7417 -replay trace.ormtrace -session run7
//
// Exit codes: 0 when the server confirms the complete stream, 2 when the
// retry budget is exhausted (the server keeps what was acknowledged;
// re-running the same -session resumes), 1 on hard errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ormprof/internal/cliutil"
	"ormprof/internal/memsim"
	"ormprof/internal/serve"
	"ormprof/internal/trace"
	"ormprof/internal/tracefmt"
	"ormprof/internal/workloads"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7417", "ormpd TCP address")
		addrs    = cliutil.ListFlag(flag.CommandLine, "addrs", "comma-separated ormpd/router addresses; attempts rotate through them, so one router going down costs one retry (overrides -addr)")
		session  = flag.String("session", "", "session identifier for resume across reconnects and daemon restarts (default: the workload name)")
		workload = flag.String("workload", "", "run this workload live and push its trace")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "workload random seed")
		replay   = flag.String("replay", "", "push a recorded trace file instead of running a workload")
		batch    = flag.Int("batch", tracefmt.DefaultBatch, "events per pushed frame")
		window   = flag.Int("window", 64, "maximum unacknowledged frames in flight")
		attempt  = flag.Duration("attempt-timeout", 10*time.Second, "timeout for each network operation")
		retries  = flag.Int("max-attempts", 8, "consecutive failed attempts before giving up (progress resets the count)")
		backoff  = flag.Duration("backoff", 50*time.Millisecond, "base delay between attempts (doubles per failure, with jitter)")
		backMax  = flag.Duration("backoff-max", 2*time.Second, "backoff cap")
		jitter   = flag.Int64("jitter-seed", 0, "seed for backoff jitter (0 = default; fixed seeds reproduce retry schedules)")
		quiet    = flag.Bool("quiet", false, "suppress per-attempt log lines")
	)
	flag.Parse()
	if err := run(*addr, *addrs, *session, *workload, workloads.Config{Scale: *scale, Seed: *seed},
		*replay, *batch, *window, *attempt, *retries, *backoff, *backMax, *jitter, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "ormpush: %v\n", err)
		var ex *serve.ExhaustedError
		if errors.As(err, &ex) {
			os.Exit(2) // degraded: acknowledged frames are durable server-side
		}
		os.Exit(cliutil.ExitCode(err))
	}
}

func run(addr string, addrs []string, session, workload string, cfg workloads.Config, replay string,
	batch, window int, attempt time.Duration, retries int,
	backoff, backMax time.Duration, jitter int64, quiet bool) error {
	if batch < 1 || batch > tracefmt.MaxBatch {
		return fmt.Errorf("-batch must be in [1, %d]", tracefmt.MaxBatch)
	}
	name, sites, events, err := loadEvents(workload, cfg, replay)
	if err != nil {
		return err
	}
	frames, err := cutFrames(events, batch)
	if err != nil {
		return err
	}
	if session == "" {
		session = name
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ccfg := serve.ClientConfig{
		Addr:           addr,
		Addrs:          addrs,
		SessionID:      session,
		Workload:       name,
		Sites:          sites,
		AttemptTimeout: attempt,
		MaxAttempts:    retries,
		BackoffBase:    backoff,
		BackoffMax:     backMax,
		JitterSeed:     jitter,
		Window:         window,
	}
	if !quiet {
		ccfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ormpush: "+format+"\n", args...)
		}
	}
	stats, err := serve.Push(ctx, ccfg, frames)
	if err != nil {
		return err
	}
	fmt.Printf("pushed %s: %d frames (%d events) in %d attempt(s)\n",
		name, len(frames), len(events), stats.Attempts)
	return nil
}

// loadEvents materializes the event stream to push: a recorded trace's
// events (strict read — a damaged trace should be salvaged with tracecat
// first, not silently pushed) or a live workload run.
func loadEvents(workload string, cfg workloads.Config, replay string) (string, map[trace.SiteID]string, []trace.Event, error) {
	if replay != "" {
		if workload != "" {
			return "", nil, nil, fmt.Errorf("-workload and -replay are mutually exclusive")
		}
		f, err := os.Open(replay)
		if err != nil {
			return "", nil, nil, err
		}
		defer f.Close()
		r, err := tracefmt.NewReader(f)
		if err != nil {
			return "", nil, nil, fmt.Errorf("%s: %w", replay, err)
		}
		buf := &trace.Buffer{}
		if _, err := trace.Drain(r, buf); err != nil {
			return "", nil, nil, fmt.Errorf("%s: %w", replay, err)
		}
		name := r.Name()
		if name == "" {
			name = "trace"
		}
		return name, r.Sites(), buf.Events, nil
	}
	if workload == "" {
		return "", nil, nil, fmt.Errorf("one of -workload or -replay is required")
	}
	prog, err := workloads.New(workload, cfg)
	if err != nil {
		return "", nil, nil, err
	}
	buf := &trace.Buffer{}
	m := memsim.Run(prog, buf)
	return workload, m.StaticSites(), buf.Events, nil
}

// cutFrames slices events into standalone v3 frames of the batch size.
func cutFrames(events []trace.Event, batch int) (serve.SliceFrames, error) {
	var frames serve.SliceFrames
	for i := 0; i < len(events); i += batch {
		end := i + batch
		if end > len(events) {
			end = len(events)
		}
		f, err := tracefmt.EncodeFrame(events[i:end])
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}
